//! Event-driven three-valued simulation.

use mcp_logic::V3;
use mcp_netlist::{Netlist, NodeId, NodeKind};
use std::collections::VecDeque;

/// An event-driven three-valued simulator over a [`Netlist`].
///
/// Unlike [`ParallelSim`](crate::ParallelSim), this simulator works in the
/// ternary domain (unset inputs read `X`) and only re-evaluates gates whose
/// fanins changed, making incremental what-if probing cheap. It is the
/// workhorse of the examples and of cross-validation tests; the production
/// filter uses the bit-parallel simulator.
///
/// # Example
///
/// ```
/// use mcp_logic::V3;
/// use mcp_netlist::bench;
/// use mcp_sim::EventSim;
///
/// let nl = bench::parse("t", "INPUT(A)\nOUTPUT(Y)\nY = AND(A, B)\nB = NOT(A)")?;
/// let mut sim = EventSim::new(&nl);
/// // With A unknown, Y is unknown (the simulator does not detect the
/// // A & !A tautology — that is the implication engine's job).
/// assert_eq!(sim.value(nl.find_node("Y").unwrap()), V3::X);
/// sim.set_input(0, V3::One);
/// sim.propagate();
/// assert_eq!(sim.value(nl.find_node("Y").unwrap()), V3::Zero);
/// # Ok::<(), mcp_netlist::bench::ParseBenchError>(())
/// ```
#[derive(Debug, Clone)]
pub struct EventSim<'a> {
    netlist: &'a Netlist,
    values: Vec<V3>,
    dirty: Vec<bool>,
    queue: VecDeque<NodeId>,
    /// Gate evaluations performed since construction (for instrumentation).
    evals: u64,
}

impl<'a> EventSim<'a> {
    /// Creates a simulator with every input and FF at `X` and constants at
    /// their values; combinational nodes are consistent (all `X` unless
    /// constants force them).
    pub fn new(netlist: &'a Netlist) -> Self {
        let mut sim = EventSim {
            netlist,
            values: vec![V3::X; netlist.num_nodes()],
            dirty: vec![false; netlist.num_nodes()],
            queue: VecDeque::new(),
            evals: 0,
        };
        for (id, node) in netlist.nodes() {
            if let NodeKind::Const(v) = node.kind() {
                sim.values[id.index()] = V3::from(v);
                sim.schedule_fanouts(id);
            }
        }
        sim.propagate();
        sim
    }

    fn schedule_fanouts(&mut self, id: NodeId) {
        for &out in self.netlist.fanouts(id) {
            if self.netlist.node(out).kind().is_gate() && !self.dirty[out.index()] {
                self.dirty[out.index()] = true;
                self.queue.push_back(out);
            }
        }
    }

    /// Sets primary input `pi` and schedules affected gates.
    ///
    /// Call [`propagate`](Self::propagate) to settle the circuit.
    ///
    /// # Panics
    ///
    /// Panics if `pi` is out of range.
    pub fn set_input(&mut self, pi: usize, v: V3) {
        let id = self.netlist.inputs()[pi];
        if self.values[id.index()] != v {
            self.values[id.index()] = v;
            self.schedule_fanouts(id);
        }
    }

    /// Sets flip-flop `ff`'s present state and schedules affected gates.
    ///
    /// # Panics
    ///
    /// Panics if `ff` is out of range.
    pub fn set_state(&mut self, ff: usize, v: V3) {
        let id = self.netlist.dffs()[ff];
        if self.values[id.index()] != v {
            self.values[id.index()] = v;
            self.schedule_fanouts(id);
        }
    }

    /// Propagates pending events until the circuit settles.
    pub fn propagate(&mut self) {
        while let Some(g) = self.queue.pop_front() {
            self.dirty[g.index()] = false;
            let node = self.netlist.node(g);
            let kind = node.kind().gate_kind().expect("only gates scheduled");
            self.evals += 1;
            let v = kind.eval_v3(node.fanins().iter().map(|f| self.values[f.index()]));
            if v != self.values[g.index()] {
                self.values[g.index()] = v;
                self.schedule_fanouts(g);
            }
        }
    }

    /// Latches every FF's D-input value (positive clock edge) and settles
    /// the next cycle's combinational values.
    pub fn clock(&mut self) {
        let next: Vec<V3> = (0..self.netlist.num_ffs())
            .map(|k| self.values[self.netlist.ff_d_input(k).index()])
            .collect();
        for (k, v) in next.into_iter().enumerate() {
            self.set_state(k, v);
        }
        self.propagate();
    }

    /// The settled value of a node (valid after
    /// [`propagate`](Self::propagate)).
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to the netlist.
    #[inline]
    pub fn value(&self, node: NodeId) -> V3 {
        self.values[node.index()]
    }

    /// Present state of flip-flop `ff`.
    ///
    /// # Panics
    ///
    /// Panics if `ff` is out of range.
    #[inline]
    pub fn state(&self, ff: usize) -> V3 {
        self.values[self.netlist.dffs()[ff].index()]
    }

    /// Number of gate evaluations performed so far (instrumentation for
    /// benches).
    #[inline]
    pub fn evals(&self) -> u64 {
        self.evals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParallelSim;
    use mcp_logic::GateKind;
    use mcp_netlist::NetlistBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_netlist(seed: u64, n_gates: usize) -> Netlist {
        // Random combinational DAG over 4 PIs and 2 FFs with random D hookup.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = NetlistBuilder::new("rand");
        let mut pool: Vec<NodeId> = (0..4).map(|i| b.input(format!("I{i}"))).collect();
        let ffs: Vec<NodeId> = (0..2).map(|i| b.dff(format!("F{i}"))).collect();
        pool.extend(&ffs);
        let kinds = [
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Not,
            GateKind::Buf,
        ];
        for _ in 0..n_gates {
            let kind = kinds[rng.random_range(0..kinds.len())];
            let arity = kind.fixed_arity().unwrap_or(rng.random_range(1..=3));
            let ins: Vec<NodeId> = (0..arity)
                .map(|_| pool[rng.random_range(0..pool.len())])
                .collect();
            let g = b.gate_auto(kind, ins).unwrap();
            pool.push(g);
        }
        for &ff in &ffs {
            let d = pool[rng.random_range(0..pool.len())];
            b.set_dff_input(ff, d).unwrap();
        }
        b.mark_output(*pool.last().unwrap());
        b.finish().unwrap()
    }

    #[test]
    fn agrees_with_parallel_sim_on_definite_values() {
        for seed in 0..20 {
            let nl = rand_netlist(seed, 25);
            let mut esim = EventSim::new(&nl);
            let mut psim = ParallelSim::new(&nl);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
            for pi in 0..nl.num_inputs() {
                let bit: bool = rng.random();
                esim.set_input(pi, V3::from(bit));
                psim.set_input(pi, if bit { u64::MAX } else { 0 });
            }
            for ff in 0..nl.num_ffs() {
                let bit: bool = rng.random();
                esim.set_state(ff, V3::from(bit));
                psim.set_state(ff, if bit { u64::MAX } else { 0 });
            }
            esim.propagate();
            psim.eval();
            for (id, _) in nl.nodes() {
                let pv = psim.value(id) & 1 == 1;
                assert_eq!(
                    esim.value(id),
                    V3::from(pv),
                    "node {} in seed {seed}",
                    nl.node(id).name()
                );
            }
        }
    }

    #[test]
    fn unknown_inputs_yield_x_unless_controlled() {
        let mut b = NetlistBuilder::new("x");
        let a = b.input("A");
        let c = b.input("B");
        let g = b.gate("G", GateKind::And, [a, c]).unwrap();
        b.mark_output(g);
        let nl = b.finish().unwrap();
        let mut sim = EventSim::new(&nl);
        assert_eq!(sim.value(g), V3::X);
        sim.set_input(0, V3::Zero);
        sim.propagate();
        assert_eq!(sim.value(g), V3::Zero); // controlled by A=0
    }

    #[test]
    fn clock_advances_ff_state() {
        let mut b = NetlistBuilder::new("t");
        let q = b.dff("Q");
        let n = b.gate("N", GateKind::Not, [q]).unwrap();
        b.set_dff_input(q, n).unwrap();
        let nl = b.finish().unwrap();
        let mut sim = EventSim::new(&nl);
        sim.set_state(0, V3::Zero);
        sim.propagate();
        sim.clock();
        assert_eq!(sim.state(0), V3::One);
        sim.clock();
        assert_eq!(sim.state(0), V3::Zero);
    }

    #[test]
    fn event_counting_is_incremental() {
        let nl = rand_netlist(3, 30);
        let mut sim = EventSim::new(&nl);
        for pi in 0..nl.num_inputs() {
            sim.set_input(pi, V3::Zero);
        }
        sim.propagate();
        let full = sim.evals();
        // Re-setting the same value schedules nothing.
        sim.set_input(0, V3::Zero);
        sim.propagate();
        assert_eq!(sim.evals(), full);
    }
}

#[cfg(test)]
mod v5_theorem {
    //! The D-calculus componentwise-evaluation theorem: over **definite**
    //! source values, evaluating a circuit once over
    //! [`V5`](mcp_logic::V5) equals evaluating it twice over the
    //! `(before, after)` [`V3`] components — which is what justifies
    //! analyzing the two frames of a clock edge separately (as the hazard
    //! checker does) while still speaking of "transitions". With unknowns
    //! among the sources, `V5` is a sound *abstraction*: it may answer `X`
    //! where the componentwise evaluation still knows one frame (the pair
    //! `(0, X)` collapses to `X`), but it never answers a definite value
    //! the components contradict.

    use mcp_logic::{V3, V5};
    use mcp_netlist::{Netlist, NodeKind};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn eval_both(nl: &Netlist, seed: u64, allow_x: bool) -> (Vec<V3>, Vec<V3>, Vec<V5>) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5E5E);
        let n = nl.num_nodes();
        let mut before = vec![V3::X; n];
        let mut after = vec![V3::X; n];
        let mut five = vec![V5::X; n];
        let values: &[V3] = if allow_x {
            &[V3::Zero, V3::One, V3::X]
        } else {
            &[V3::Zero, V3::One]
        };
        for &src in nl.inputs().iter().chain(nl.dffs().iter()) {
            let b = values[rng.random_range(0..values.len())];
            let a = values[rng.random_range(0..values.len())];
            before[src.index()] = b;
            after[src.index()] = a;
            five[src.index()] = V5::from_components(b, a);
        }
        for (id, node) in nl.nodes() {
            if let NodeKind::Const(v) = node.kind() {
                before[id.index()] = V3::from(v);
                after[id.index()] = V3::from(v);
                five[id.index()] = V5::from(v);
            }
        }
        for &g in nl.topo_gates() {
            let node = nl.node(g);
            let kind = node.kind().gate_kind().expect("gate");
            before[g.index()] = kind.eval_v3(node.fanins().iter().map(|f| before[f.index()]));
            after[g.index()] = kind.eval_v3(node.fanins().iter().map(|f| after[f.index()]));
            five[g.index()] = kind.eval_v5(node.fanins().iter().map(|f| five[f.index()]));
        }
        (before, after, five)
    }

    fn test_netlist(seed: u64) -> Netlist {
        mcp_gen::random::random_netlist(
            seed,
            &mcp_gen::random::RandomCircuitConfig {
                ffs: 3,
                pis: 3,
                gates: 25,
                max_arity: 3,
            },
        )
    }

    #[test]
    fn exact_on_definite_sources() {
        for seed in 0..40u64 {
            let nl = test_netlist(seed);
            let (before, after, five) = eval_both(&nl, seed, false);
            for (id, node) in nl.nodes() {
                assert_eq!(
                    five[id.index()],
                    V5::from_components(before[id.index()], after[id.index()]),
                    "seed {seed}, node {}",
                    node.name()
                );
            }
        }
    }

    #[test]
    fn sound_abstraction_with_unknown_sources() {
        for seed in 0..40u64 {
            let nl = test_netlist(seed);
            let (before, after, five) = eval_both(&nl, seed, true);
            for (id, node) in nl.nodes() {
                let v5 = five[id.index()];
                if v5 != V5::X {
                    let (b, a) = v5.components();
                    let name = node.name();
                    if before[id.index()].is_definite() {
                        assert_eq!(b, before[id.index()], "seed {seed}, node {name}");
                    }
                    if after[id.index()].is_definite() {
                        assert_eq!(a, after[id.index()], "seed {seed}, node {name}");
                    }
                }
            }
        }
    }
}
