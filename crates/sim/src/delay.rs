//! Transport-delay timing simulation for dynamic glitch observation.
//!
//! The static hazard checks of the analysis are delay-*independent*; this
//! simulator is the delay-*dependent* ground they are validated against:
//! assign a concrete delay to every gate, switch the flip-flop outputs and
//! primary inputs simultaneously (a clock edge), and watch whether a node
//! transitions more than once before settling — a **dynamic glitch**, the
//! event the paper's Section 5 worries may cross a relaxed cycle boundary.
//!
//! The model is the transport-delay model: a gate re-evaluates whenever an
//! input changes and schedules its new output value `delay` time units
//! later whenever it differs from the last value already scheduled.
//! Opposite changes in flight are both delivered, which is exactly what
//! makes static hazards visible (an inertial model would swallow narrow
//! pulses).

use mcp_netlist::{Netlist, NodeId, NodeKind};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of simulating one clock edge: per-node transition counts, plus
/// the full event trace when waveform recording is enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeReport {
    transitions: Vec<u32>,
    settle_time: u64,
    /// `(time, node, new_value)` in firing order; empty unless
    /// [`DelaySim::record_waveforms`] was enabled.
    events: Vec<(u64, NodeId, bool)>,
}

impl EdgeReport {
    /// How many times `node` changed value while the logic settled.
    ///
    /// For a node whose initial and final values are equal, any nonzero
    /// count is even and means a **glitch** (a static hazard realized).
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to the simulated netlist.
    #[inline]
    pub fn transitions(&self, node: NodeId) -> u32 {
        self.transitions[node.index()]
    }

    /// Whether `node` glitched: it transitioned at least twice (its
    /// settled value may or may not equal its initial value; two or more
    /// transitions always mean a non-monotonic waveform).
    #[inline]
    pub fn glitched(&self, node: NodeId) -> bool {
        self.transitions[node.index()] >= 2
    }

    /// The time at which the last event fired.
    #[inline]
    pub fn settle_time(&self) -> u64 {
        self.settle_time
    }

    /// The recorded `(time, node, new_value)` events in firing order
    /// (empty unless [`DelaySim::record_waveforms`] was enabled).
    #[inline]
    pub fn events(&self) -> &[(u64, NodeId, bool)] {
        &self.events
    }
}

/// A two-valued transport-delay simulator (see [module docs](self)).
///
/// # Example
///
/// ```
/// use mcp_netlist::bench;
/// use mcp_sim::DelaySim;
///
/// // y = OR(a, NOT a): a falling input produces the classic static-1
/// // hazard at y when the inverter is slow.
/// let nl = bench::parse("hz", "INPUT(a)\nOUTPUT(y)\nq = DFF(y)\nna = NOT(a)\ny = OR(a, na)")?;
/// let mut sim = DelaySim::new(&nl);
/// sim.set_delay(nl.find_node("na").unwrap(), 3);
/// sim.init(&[true], &[false]);
/// let report = sim.edge(&[false], &[false]); // a: 1 -> 0
/// assert!(report.glitched(nl.find_node("y").unwrap()));
/// # Ok::<(), mcp_netlist::bench::ParseBenchError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DelaySim<'a> {
    netlist: &'a Netlist,
    delay: Vec<u64>,
    val: Vec<bool>,
    /// The value each node will hold after all pending events fire.
    projected: Vec<bool>,
    record: bool,
}

impl<'a> DelaySim<'a> {
    /// Creates a simulator with every gate at delay 1 (sources at 0).
    pub fn new(netlist: &'a Netlist) -> Self {
        let delay = netlist
            .nodes()
            .map(|(_, n)| u64::from(n.kind().is_gate()))
            .collect();
        DelaySim {
            netlist,
            delay,
            val: vec![false; netlist.num_nodes()],
            projected: vec![false; netlist.num_nodes()],
            record: false,
        }
    }

    /// Enables (or disables) waveform recording: subsequent
    /// [`edge`](Self::edge) calls populate [`EdgeReport::events`].
    pub fn record_waveforms(&mut self, on: bool) {
        self.record = on;
    }

    /// Sets the propagation delay of a gate (ignored for sources).
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to the netlist.
    pub fn set_delay(&mut self, node: NodeId, delay: u64) {
        self.delay[node.index()] = delay;
    }

    /// Establishes a stable pre-edge state: primary inputs and FF outputs
    /// take the given values and the combinational logic is settled
    /// statically (delays play no role before the edge).
    ///
    /// # Panics
    ///
    /// Panics if the slices do not match the input/FF counts.
    pub fn init(&mut self, pis: &[bool], ffs: &[bool]) {
        assert_eq!(pis.len(), self.netlist.num_inputs(), "pi count");
        assert_eq!(ffs.len(), self.netlist.num_ffs(), "ff count");
        for (k, &pi) in self.netlist.inputs().iter().enumerate() {
            self.val[pi.index()] = pis[k];
        }
        for (k, &ff) in self.netlist.dffs().iter().enumerate() {
            self.val[ff.index()] = ffs[k];
        }
        for (id, node) in self.netlist.nodes() {
            if let NodeKind::Const(v) = node.kind() {
                self.val[id.index()] = v;
            }
        }
        for &g in self.netlist.topo_gates() {
            let node = self.netlist.node(g);
            let kind = node.kind().gate_kind().expect("gate");
            self.val[g.index()] = kind.eval_bool(node.fanins().iter().map(|f| self.val[f.index()]));
        }
        self.projected.copy_from_slice(&self.val);
    }

    /// Simulates one clock edge: at time 0 the primary inputs and FF
    /// outputs switch (simultaneously) to the given values; events then
    /// propagate under the configured delays until the logic settles.
    ///
    /// Returns the per-node transition counts. The simulator's state ends
    /// at the settled post-edge values, so consecutive [`edge`](Self::edge)
    /// calls walk through a clock sequence.
    ///
    /// # Panics
    ///
    /// Panics if the slices do not match the input/FF counts, or called
    /// before [`init`](Self::init).
    pub fn edge(&mut self, pis: &[bool], ffs: &[bool]) -> EdgeReport {
        assert_eq!(pis.len(), self.netlist.num_inputs(), "pi count");
        assert_eq!(ffs.len(), self.netlist.num_ffs(), "ff count");

        let mut transitions = vec![0u32; self.netlist.num_nodes()];
        let mut events: Vec<(u64, NodeId, bool)> = Vec::new();
        // (time, seq, node, value) min-heap; seq keeps ordering deterministic.
        let mut heap: BinaryHeap<Reverse<(u64, u64, u32, bool)>> = BinaryHeap::new();
        let mut seq = 0u64;

        let push = |heap: &mut BinaryHeap<Reverse<(u64, u64, u32, bool)>>,
                    seq: &mut u64,
                    t: u64,
                    node: NodeId,
                    v: bool| {
            heap.push(Reverse((t, *seq, node.index() as u32, v)));
            *seq += 1;
        };

        // Source switches at t = 0.
        for (k, &pi) in self.netlist.inputs().iter().enumerate() {
            if self.val[pi.index()] != pis[k] {
                push(&mut heap, &mut seq, 0, pi, pis[k]);
                self.projected[pi.index()] = pis[k];
            }
        }
        for (k, &ff) in self.netlist.dffs().iter().enumerate() {
            if self.val[ff.index()] != ffs[k] {
                push(&mut heap, &mut seq, 0, ff, ffs[k]);
                self.projected[ff.index()] = ffs[k];
            }
        }

        let mut settle_time = 0;
        while let Some(Reverse((t, _, idx, v))) = heap.pop() {
            let node = NodeId::from_index(idx as usize);
            if self.val[idx as usize] == v {
                continue; // superseded event
            }
            self.val[idx as usize] = v;
            transitions[idx as usize] += 1;
            settle_time = t;
            if self.record {
                events.push((t, node, v));
            }

            for &g in self.netlist.fanouts(node) {
                let gnode = self.netlist.node(g);
                let Some(kind) = gnode.kind().gate_kind() else {
                    continue; // DFF D pins don't propagate within the cycle
                };
                let new = kind.eval_bool(gnode.fanins().iter().map(|f| self.val[f.index()]));
                if new != self.projected[g.index()] {
                    self.projected[g.index()] = new;
                    push(&mut heap, &mut seq, t + self.delay[g.index()], g, new);
                }
            }
        }

        EdgeReport {
            transitions,
            settle_time,
            events,
        }
    }

    /// The settled value of a node (valid after [`init`](Self::init) /
    /// [`edge`](Self::edge)).
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to the netlist.
    #[inline]
    pub fn value(&self, node: NodeId) -> bool {
        self.val[node.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcp_netlist::bench;

    fn hazard_or() -> Netlist {
        bench::parse(
            "hz",
            "INPUT(a)\nOUTPUT(y)\nq = DFF(y)\nna = NOT(a)\ny = OR(a, na)",
        )
        .expect("parse")
    }

    #[test]
    fn static_one_hazard_appears_when_the_inverter_is_slow() {
        let nl = hazard_or();
        let y = nl.find_node("y").unwrap();
        let na = nl.find_node("na").unwrap();
        let mut sim = DelaySim::new(&nl);
        sim.set_delay(na, 3);
        sim.init(&[true], &[false]);
        assert!(sim.value(y));
        let report = sim.edge(&[false], &[false]);
        // y: 1 -> 0 (at t=1, a already low, na still low) -> 1 (na catches
        // up at t=3, y recovers at t=4).
        assert_eq!(report.transitions(y), 2);
        assert!(report.glitched(y));
        assert!(sim.value(y), "settled back to 1");
        assert_eq!(report.settle_time(), 4);
    }

    #[test]
    fn no_glitch_with_balanced_delays_on_rising_input() {
        let nl = hazard_or();
        let y = nl.find_node("y").unwrap();
        let mut sim = DelaySim::new(&nl);
        sim.init(&[false], &[false]);
        // a rising: OR output goes 1 via the direct input before the
        // inverter can pull it down — no glitch on this edge direction
        // with unit delays (y is already 1 when na falls).
        let report = sim.edge(&[true], &[false]);
        assert_eq!(report.transitions(y), 0);
        assert!(sim.value(y));
    }

    #[test]
    fn settled_values_match_static_evaluation() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // After every edge, the settled values must equal a plain static
        // evaluation of the new inputs — for random circuits and random
        // delays.
        for seed in 0..20u64 {
            let nl = mcp_gen::random::random_netlist(
                seed,
                &mcp_gen::random::RandomCircuitConfig::default(),
            );
            let mut rng = StdRng::seed_from_u64(seed ^ 0xD00D);
            let mut sim = DelaySim::new(&nl);
            for &g in nl.topo_gates() {
                sim.set_delay(g, rng.random_range(1..8));
            }
            let r: &mut StdRng = &mut rng;
            let pis0: Vec<bool> = (0..nl.num_inputs()).map(|_| r.random()).collect();
            let ffs0: Vec<bool> = (0..nl.num_ffs()).map(|_| r.random()).collect();
            sim.init(&pis0, &ffs0);
            for _ in 0..5 {
                let pis: Vec<bool> = (0..nl.num_inputs()).map(|_| r.random()).collect();
                let ffs: Vec<bool> = (0..nl.num_ffs()).map(|_| r.random()).collect();
                sim.edge(&pis, &ffs);
                let mut check = DelaySim::new(&nl);
                check.init(&pis, &ffs);
                for (id, _) in nl.nodes() {
                    assert_eq!(
                        sim.value(id),
                        check.value(id),
                        "seed {seed}, node {}",
                        nl.node(id).name()
                    );
                }
            }
        }
    }

    #[test]
    fn transition_counts_have_consistent_parity() {
        // A node whose initial and settled values are equal must have an
        // even transition count; otherwise odd.
        let nl = hazard_or();
        let mut sim = DelaySim::new(&nl);
        sim.init(&[true], &[false]);
        let before: Vec<bool> = nl.nodes().map(|(id, _)| sim.value(id)).collect();
        let report = sim.edge(&[false], &[true]);
        for (k, (id, _)) in nl.nodes().enumerate() {
            let parity_change = before[k] != sim.value(id);
            assert_eq!(
                report.transitions(id) % 2 == 1,
                parity_change,
                "node {}",
                nl.node(id).name()
            );
        }
    }

    #[test]
    fn unchanged_edge_produces_no_events() {
        let nl = hazard_or();
        let mut sim = DelaySim::new(&nl);
        sim.init(&[true], &[true]);
        let report = sim.edge(&[true], &[true]);
        for (id, _) in nl.nodes() {
            assert_eq!(report.transitions(id), 0);
        }
        assert_eq!(report.settle_time(), 0);
    }
}
