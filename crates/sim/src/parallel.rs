//! 64-lane bit-parallel two-valued simulation.

use mcp_netlist::{Netlist, NodeId, NodeKind};
use rand::Rng;

/// A bit-parallel two-valued simulator: bit `l` of every node word is one
/// independent simulation lane, so each [`eval`](Self::eval) pass simulates
/// 64 Boolean input vectors at once.
///
/// The simulator separates *state* (one word per flip-flop, persisting
/// across clock cycles) from *combinational values* (one word per node,
/// recomputed by `eval`). [`clock`](Self::clock) latches the D-input values
/// of the most recent `eval` into the state, implementing positive-edge
/// D-FF semantics.
#[derive(Debug, Clone)]
pub struct ParallelSim<'a> {
    netlist: &'a Netlist,
    values: Vec<u64>,
    inputs: Vec<u64>,
    state: Vec<u64>,
}

impl<'a> ParallelSim<'a> {
    /// Creates a simulator with all inputs and state zero.
    pub fn new(netlist: &'a Netlist) -> Self {
        let mut values = vec![0; netlist.num_nodes()];
        // Constant nodes never change: write their words once here instead
        // of re-initializing them on every eval pass.
        for (id, node) in netlist.nodes() {
            if let NodeKind::Const(v) = node.kind() {
                values[id.index()] = if v { u64::MAX } else { 0 };
            }
        }
        ParallelSim {
            netlist,
            values,
            inputs: vec![0; netlist.num_inputs()],
            state: vec![0; netlist.num_ffs()],
        }
    }

    /// The netlist being simulated.
    #[inline]
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// Sets the 64 lanes of primary input `pi`.
    ///
    /// # Panics
    ///
    /// Panics if `pi` is out of range.
    #[inline]
    pub fn set_input(&mut self, pi: usize, word: u64) {
        self.inputs[pi] = word;
    }

    /// Sets the 64 lanes of flip-flop `ff`'s state.
    ///
    /// # Panics
    ///
    /// Panics if `ff` is out of range.
    #[inline]
    pub fn set_state(&mut self, ff: usize, word: u64) {
        self.state[ff] = word;
    }

    /// Current state word of flip-flop `ff`.
    ///
    /// # Panics
    ///
    /// Panics if `ff` is out of range.
    #[inline]
    pub fn state(&self, ff: usize) -> u64 {
        self.state[ff]
    }

    /// Randomizes every input lane from `rng`.
    pub fn randomize_inputs<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for w in &mut self.inputs {
            *w = rng.random();
        }
    }

    /// Randomizes every state lane from `rng` (the "all states reachable"
    /// assumption of the paper).
    pub fn randomize_state<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for w in &mut self.state {
            *w = rng.random();
        }
    }

    /// Evaluates the combinational logic for the current inputs and state.
    ///
    /// After `eval`, [`value`](Self::value) is valid for every node and
    /// [`next_state`](Self::next_state) gives each FF's D-input word.
    pub fn eval(&mut self) {
        for (i, &pi) in self.netlist.inputs().iter().enumerate() {
            self.values[pi.index()] = self.inputs[i];
        }
        for (i, &ff) in self.netlist.dffs().iter().enumerate() {
            self.values[ff.index()] = self.state[i];
        }
        // Constant node words were written once at construction.
        // Reuse a small scratch buffer for fanin words to avoid per-gate
        // allocation.
        let mut scratch: Vec<u64> = Vec::with_capacity(8);
        for &g in self.netlist.topo_gates() {
            let node = self.netlist.node(g);
            let kind = node.kind().gate_kind().expect("topo holds gates");
            scratch.clear();
            scratch.extend(node.fanins().iter().map(|f| self.values[f.index()]));
            self.values[g.index()] = kind.eval_word(&scratch);
        }
    }

    /// The 64-lane value of `node` from the most recent [`eval`](Self::eval).
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to the netlist.
    #[inline]
    pub fn value(&self, node: NodeId) -> u64 {
        self.values[node.index()]
    }

    /// The D-input word of flip-flop `ff` from the most recent `eval` —
    /// i.e. the state it will hold after the next [`clock`](Self::clock).
    ///
    /// # Panics
    ///
    /// Panics if `ff` is out of range.
    #[inline]
    pub fn next_state(&self, ff: usize) -> u64 {
        self.values[self.netlist.ff_d_input(ff).index()]
    }

    /// Latches every FF's D-input value (positive clock edge).
    ///
    /// Call after [`eval`](Self::eval); the state then reflects time `t+1`.
    pub fn clock(&mut self) {
        for ff in 0..self.netlist.num_ffs() {
            self.state[ff] = self.next_state(ff);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcp_logic::GateKind;
    use mcp_netlist::NetlistBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gray2() -> Netlist {
        // 2-bit gray counter: F3' = F4, F4' = NOT F3 (the Fig.1 controller)
        let mut b = NetlistBuilder::new("gray2");
        let f3 = b.dff("F3");
        let f4 = b.dff("F4");
        let nf3 = b.gate("NF3", GateKind::Not, [f3]).unwrap();
        b.set_dff_input(f3, f4).unwrap();
        b.set_dff_input(f4, nf3).unwrap();
        b.mark_output(f3);
        b.finish().unwrap()
    }

    #[test]
    fn gray_counter_cycles_through_four_states() {
        let nl = gray2();
        let mut sim = ParallelSim::new(&nl);
        sim.set_state(0, 0);
        sim.set_state(1, 0);
        let mut states = Vec::new();
        for _ in 0..5 {
            states.push((sim.state(0) & 1, sim.state(1) & 1));
            sim.eval();
            sim.clock();
        }
        assert_eq!(states, vec![(0, 0), (0, 1), (1, 1), (1, 0), (0, 0)]);
    }

    #[test]
    fn lanes_are_independent() {
        let nl = gray2();
        let mut sim = ParallelSim::new(&nl);
        // lane 0: state (0,0); lane 1: state (1,1)
        sim.set_state(0, 0b10);
        sim.set_state(1, 0b10);
        sim.eval();
        sim.clock();
        // lane 0 -> (0,1); lane 1 -> (1,0)
        assert_eq!(sim.state(0) & 0b11, 0b10);
        assert_eq!(sim.state(1) & 0b11, 0b01);
    }

    #[test]
    fn constants_drive_all_lanes() {
        let mut b = NetlistBuilder::new("c");
        let one = b.constant("ONE", true);
        let zero = b.constant("ZERO", false);
        let a = b.gate("A", GateKind::And, [one, zero]).unwrap();
        let o = b.gate("O", GateKind::Or, [one, zero]).unwrap();
        b.mark_output(a);
        b.mark_output(o);
        let nl = b.finish().unwrap();
        let mut sim = ParallelSim::new(&nl);
        sim.eval();
        assert_eq!(sim.value(nl.find_node("A").unwrap()), 0);
        assert_eq!(sim.value(nl.find_node("O").unwrap()), u64::MAX);
    }

    #[test]
    fn random_state_and_inputs_cover_lanes() {
        let nl = gray2();
        let mut sim = ParallelSim::new(&nl);
        let mut rng = StdRng::seed_from_u64(7);
        sim.randomize_state(&mut rng);
        let before = (sim.state(0), sim.state(1));
        sim.eval();
        sim.clock();
        // next state is a permutation of bits of the old state, lanewise:
        // F3' = F4, F4' = !F3
        assert_eq!(sim.state(0), before.1);
        assert_eq!(sim.state(1), !before.0);
    }

    #[test]
    fn next_state_matches_d_input_value() {
        let nl = gray2();
        let mut sim = ParallelSim::new(&nl);
        sim.set_state(0, 0xDEAD);
        sim.set_state(1, 0xBEEF);
        sim.eval();
        let d0 = nl.ff_d_input(0);
        assert_eq!(sim.next_state(0), sim.value(d0));
        assert_eq!(sim.next_state(0), 0xBEEF);
        assert_eq!(sim.next_state(1), !0xDEAD);
    }
}
