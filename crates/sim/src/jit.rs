//! Native-code kernel tier: a self-contained x86-64 emitter over the
//! fused tape.
//!
//! [`JitKernel::compile`] turns a [`FusedTape`] into one flat machine
//! code function with the C ABI `fn(*mut u64)` — the single argument
//! (`rdi` on the SysV ABI) points at the slot buffer, laid out exactly
//! as [`JitSim`] stores it: `num_slots` consecutive `[u64; W]` batches,
//! so slot `s` lane-word `l` lives at byte offset `(s*W + l) * 8`. Each
//! fused instruction becomes a load/load/logic-op/store group; there is
//! no register allocation beyond two scratch registers because the slot
//! buffer *is* the register file — the fused tape's dense renumbering
//! already guarantees a gap-free straight-line block.
//!
//! Two emitters share that skeleton:
//!
//! * **AVX2** (when the host supports it and `W % 4 == 0`): each
//!   instruction processes the batch in 256-bit chunks of four lane
//!   words with `vpand`/`vpor`/`vpxor`/`vpandn`; `ymm15` holds all-ones
//!   for the complementing opcodes. At the default 256 lanes
//!   (`W = 4`) one chunk covers the whole batch.
//! * **Scalar** (fallback): the same structure over 64-bit `mov`/
//!   `and`/`or`/`xor`/`not` — still branch-free straight-line code,
//!   used when AVX2 is absent.
//!
//! # The `unsafe` audit boundary
//!
//! This module is the **only** place in `mcp-sim` (and the workspace's
//! analysis path) that uses `unsafe`; the crate root carries
//! `#![deny(unsafe_code)]` and this module alone opts back in. The
//! unsafe surface is exactly three things, each W^X-disciplined:
//!
//! 1. `extern "C"` declarations of `mmap`/`mprotect`/`munmap` (we link
//!    against the platform libc the Rust std already links; no crate
//!    dependency).
//! 2. `ExecBuf`: maps an anonymous private buffer `PROT_READ |
//!    PROT_WRITE`, copies the code in, then flips it to `PROT_READ |
//!    PROT_EXEC` — the buffer is never writable and executable at the
//!    same time — and unmaps on drop.
//! 3. The call itself: transmuting the mapped address to
//!    `extern "C" fn(*mut u64)` and invoking it. [`JitKernel::run`]
//!    guards the contract the emitted code assumes (slot buffer at
//!    least `num_slots * W` words) with a hard assert.
//!
//! On non-x86-64 or non-Linux hosts (or when `mmap` fails),
//! [`JitKernel::compile`] returns `None` and the caller drops to the
//! fused interpreter tier — the ladder the filter dispatch encodes.

// The one audited exception to the crate-level `#![deny(unsafe_code)]`.
#![allow(unsafe_code)]

use crate::lower::{FusedOp, FusedRef, FusedTape};

/// Upper bound on the emitted code size, preflighted before mapping.
/// Scalar groups are ≤ 22 bytes, AVX2 groups ≤ 26 bytes per chunk;
/// 32 covers both plus prologue/epilogue slack.
const MAX_GROUP_BYTES: usize = 32;

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod exec {
    //! The mmap/mprotect shim and the W^X executable buffer.
    use core::ffi::c_void;

    // Raw libc bindings: std already links libc on this target, so the
    // symbols resolve without any crate dependency. Constants are the
    // Linux x86-64 ABI values.
    extern "C" {
        fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn mprotect(addr: *mut c_void, length: usize, prot: i32) -> i32;
        fn munmap(addr: *mut c_void, length: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const PROT_WRITE: i32 = 2;
    const PROT_EXEC: i32 = 4;
    const MAP_PRIVATE: i32 = 2;
    const MAP_ANONYMOUS: i32 = 0x20;
    const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    /// An anonymous executable mapping holding one compiled kernel.
    ///
    /// W^X discipline: the pages are writable only between `mmap` and
    /// the `mprotect` inside [`ExecBuf::new`], and never writable again.
    pub(super) struct ExecBuf {
        addr: *mut c_void,
        len: usize,
    }

    // The mapping is immutable (RX) after construction and the kernel
    // function it holds is pure over its argument, so sharing/sending
    // the buffer across threads is sound.
    unsafe impl Send for ExecBuf {}
    unsafe impl Sync for ExecBuf {}

    impl ExecBuf {
        /// Maps `code` into fresh executable pages. Returns `None` if
        /// the kernel refuses the mapping (e.g. W^X-restricted
        /// environments without exec permission).
        pub(super) fn new(code: &[u8]) -> Option<ExecBuf> {
            if code.is_empty() {
                return None;
            }
            // SAFETY: anonymous private mapping with a null hint; the
            // arguments are the documented Linux calling convention.
            let addr = unsafe {
                mmap(
                    core::ptr::null_mut(),
                    code.len(),
                    PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS,
                    -1,
                    0,
                )
            };
            if addr == MAP_FAILED || addr.is_null() {
                return None;
            }
            // SAFETY: `addr` is a fresh RW mapping of at least
            // `code.len()` bytes owned exclusively by us.
            unsafe {
                core::ptr::copy_nonoverlapping(code.as_ptr(), addr as *mut u8, code.len());
            }
            // SAFETY: flips our own mapping RW → RX (never RWX).
            if unsafe { mprotect(addr, code.len(), PROT_READ | PROT_EXEC) } != 0 {
                // SAFETY: unmaps the mapping we just created.
                unsafe { munmap(addr, code.len()) };
                return None;
            }
            Some(ExecBuf {
                addr,
                len: code.len(),
            })
        }

        /// Calls the mapped code as `extern "C" fn(*mut u64)`.
        ///
        /// # Safety contract (upheld by [`super::JitKernel::run`])
        ///
        /// `slots` must point at a buffer of at least the word count the
        /// code was emitted for; the emitted code reads and writes only
        /// within that extent and clobbers no callee-saved state.
        pub(super) fn call(&self, slots: *mut u64) {
            // SAFETY: the mapping holds a complete function emitted by
            // this module (prologue..ret) following the SysV C ABI; the
            // caller guarantees the buffer extent.
            let f: extern "C" fn(*mut u64) = unsafe { core::mem::transmute(self.addr) };
            f(slots);
        }
    }

    impl Drop for ExecBuf {
        fn drop(&mut self) {
            // SAFETY: unmapping the mapping this struct exclusively owns.
            unsafe { munmap(self.addr, self.len) };
        }
    }
}

/// A fused tape compiled to native machine code.
///
/// Holds the executable mapping plus the contract metadata
/// ([`required_words`](Self::required_words)) the call-site assert
/// checks. Construction is fallible: `None` means "this host cannot run
/// jitted code" (wrong arch/OS, mapping refused, or an offset overflowed
/// the addressing mode) and the caller falls back to [`FusedSim`].
///
/// [`FusedSim`]: crate::FusedSim
pub struct JitKernel {
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    buf: exec::ExecBuf,
    required_words: usize,
    code_bytes: usize,
    tag: &'static str,
}

impl core::fmt::Debug for JitKernel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("JitKernel")
            .field("tag", &self.tag)
            .field("code_bytes", &self.code_bytes)
            .field("required_words", &self.required_words)
            .finish()
    }
}

impl JitKernel {
    /// Compiles `fused` for batches of `W` lane words, or `None` when
    /// native code is unavailable on this host (the caller then uses
    /// the fused interpreter).
    pub fn compile<const W: usize>(fused: &FusedTape) -> Option<JitKernel> {
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        {
            let avx2 = W.is_multiple_of(4) && std::is_x86_feature_detected!("avx2");
            let code = if avx2 {
                emit_avx2::<W>(fused)?
            } else {
                emit_scalar::<W>(fused)?
            };
            let code_bytes = code.len();
            let buf = exec::ExecBuf::new(&code)?;
            Some(JitKernel {
                buf,
                required_words: fused.num_slots() * W,
                code_bytes,
                tag: if avx2 { "jit-avx2" } else { "jit-scalar" },
            })
        }
        #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
        {
            let _ = fused;
            None
        }
    }

    /// Runs one eval pass over `slots` (the flat
    /// `num_slots × W`-word buffer).
    #[inline]
    pub fn run(&self, slots: &mut [u64]) {
        assert!(
            slots.len() >= self.required_words,
            "slot buffer too small for jitted kernel: {} < {}",
            slots.len(),
            self.required_words
        );
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        self.buf.call(slots.as_mut_ptr());
        #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
        unreachable!("compile() never constructs a JitKernel off-target");
    }

    /// Size of the emitted machine code in bytes.
    #[inline]
    pub fn code_bytes(&self) -> usize {
        self.code_bytes
    }

    /// Word count the slot buffer must provide (`num_slots × W`).
    #[inline]
    pub fn required_words(&self) -> usize {
        self.required_words
    }

    /// Which emitter produced this kernel: `"jit-avx2"` or
    /// `"jit-scalar"`.
    #[inline]
    pub fn tag(&self) -> &'static str {
        self.tag
    }
}

/// Byte offset of slot `s`, lane word `l` in the flat buffer, checked
/// against the disp32 addressing-mode limit.
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
fn disp32<const W: usize>(slot: u32, lane_word: usize) -> Option<i32> {
    let byte = (slot as usize).checked_mul(W)?.checked_add(lane_word)? * 8;
    i32::try_from(byte).ok()
}

/// Emits the scalar-`u64` kernel: per fused instruction, per lane word,
/// a `mov`/logic/`mov` group on `rax`/`rdx` addressed off `rdi`.
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
fn emit_scalar<const W: usize>(fused: &FusedTape) -> Option<Vec<u8>> {
    let base = (fused.num_inputs() + fused.num_ffs()) as u32;
    let mut code = Vec::with_capacity(fused.num_ops() * W * MAX_GROUP_BYTES + 8);
    // mov rax, [rdi + d]  —  REX.W 8B /r, modrm 0x87 (rax ← [rdi+disp32]).
    let load_rax = |code: &mut Vec<u8>, d: i32| {
        code.extend_from_slice(&[0x48, 0x8B, 0x87]);
        code.extend_from_slice(&d.to_le_bytes());
    };
    // op rax, [rdi + d] with the given /r opcode (23=and, 0B=or, 33=xor).
    let op_rax_mem = |code: &mut Vec<u8>, opc: u8, d: i32| {
        code.extend_from_slice(&[0x48, opc, 0x87]);
        code.extend_from_slice(&d.to_le_bytes());
    };
    // not rax — REX.W F7 /2.
    let not_rax = |code: &mut Vec<u8>| code.extend_from_slice(&[0x48, 0xF7, 0xD0]);
    // mov [rdi + d], rax — REX.W 89 /r.
    let store_rax = |code: &mut Vec<u8>, d: i32| {
        code.extend_from_slice(&[0x48, 0x89, 0x87]);
        code.extend_from_slice(&d.to_le_bytes());
    };

    for i in 0..fused.num_ops() {
        let (op, a, b) = (fused.opcode[i], fused.lhs[i], fused.rhs[i]);
        let out = base + i as u32;
        for l in 0..W {
            let da = disp32::<W>(a, l)?;
            let db = disp32::<W>(b, l)?;
            let dout = disp32::<W>(out, l)?;
            // The AndN/OrN forms complement the *first* operand, so load
            // it, `not` it, then combine with the second from memory.
            match op {
                FusedOp::And => {
                    load_rax(&mut code, da);
                    op_rax_mem(&mut code, 0x23, db);
                }
                FusedOp::Nand => {
                    load_rax(&mut code, da);
                    op_rax_mem(&mut code, 0x23, db);
                    not_rax(&mut code);
                }
                FusedOp::Or => {
                    load_rax(&mut code, da);
                    op_rax_mem(&mut code, 0x0B, db);
                }
                FusedOp::Nor => {
                    load_rax(&mut code, da);
                    op_rax_mem(&mut code, 0x0B, db);
                    not_rax(&mut code);
                }
                FusedOp::Xor => {
                    load_rax(&mut code, da);
                    op_rax_mem(&mut code, 0x33, db);
                }
                FusedOp::Xnor => {
                    load_rax(&mut code, da);
                    op_rax_mem(&mut code, 0x33, db);
                    not_rax(&mut code);
                }
                FusedOp::AndN => {
                    load_rax(&mut code, da);
                    not_rax(&mut code);
                    op_rax_mem(&mut code, 0x23, db);
                }
                FusedOp::OrN => {
                    load_rax(&mut code, da);
                    not_rax(&mut code);
                    op_rax_mem(&mut code, 0x0B, db);
                }
            }
            store_rax(&mut code, dout);
        }
    }
    code.push(0xC3); // ret
    Some(code)
}

/// Emits the AVX2 kernel: 256-bit chunks of four lane words per group,
/// `ymm15` pinned to all-ones for the complementing opcodes. Requires
/// `W % 4 == 0` (checked by the caller via the feature gate).
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
fn emit_avx2<const W: usize>(fused: &FusedTape) -> Option<Vec<u8>> {
    debug_assert_eq!(W % 4, 0);
    let chunks = W / 4;
    let base = (fused.num_inputs() + fused.num_ffs()) as u32;
    let mut code = Vec::with_capacity(fused.num_ops() * chunks * MAX_GROUP_BYTES + 16);

    // vpcmpeqd ymm15, ymm15, ymm15 — all-ones, 3-byte VEX because the
    // destination/source are ymm8+ (needs R/B extension bits).
    code.extend_from_slice(&[0xC4, 0x41, 0x05, 0x76, 0xFF]);

    // vmovdqu ymm{0,1}, [rdi + d] — 2-byte VEX C5 FE 6F, modrm /r with
    // rm=111 (rdi), mod=10 (disp32): 0x87 for ymm0, 0x8F for ymm1.
    let load = |code: &mut Vec<u8>, reg_modrm: u8, d: i32| {
        code.extend_from_slice(&[0xC5, 0xFE, 0x6F, reg_modrm]);
        code.extend_from_slice(&d.to_le_bytes());
    };
    // ymm0 = ymm0 <op> ymm1 — 2-byte VEX, vvvv=ymm0 (0xFD), modrm C1.
    // opc: DB=vpand, EB=vpor, EF=vpxor, DF=vpandn (dst = ~vvvv & rm).
    let op_y0_y0_y1 = |code: &mut Vec<u8>, opc: u8| {
        code.extend_from_slice(&[0xC5, 0xFD, opc, 0xC1]);
    };
    // ymm0 = ~ymm1 & ymm0 — vpandn with vvvv=ymm1 (0xF5), rm=ymm0 (C0).
    let andn_y0_y1_y0 = |code: &mut Vec<u8>| {
        code.extend_from_slice(&[0xC5, 0xF5, 0xDF, 0xC0]);
    };
    // ymm0 ^= ymm15 (complement) — 3-byte VEX C4 C1 7D EF C7: rm is
    // ymm15 so the B bit lives in the 3-byte form's second byte.
    let not_y0 = |code: &mut Vec<u8>| {
        code.extend_from_slice(&[0xC4, 0xC1, 0x7D, 0xEF, 0xC7]);
    };
    // vmovdqu [rdi + d], ymm0 — store form, opcode 7F.
    let store = |code: &mut Vec<u8>, d: i32| {
        code.extend_from_slice(&[0xC5, 0xFE, 0x7F, 0x87]);
        code.extend_from_slice(&d.to_le_bytes());
    };

    for i in 0..fused.num_ops() {
        let (op, a, b) = (fused.opcode[i], fused.lhs[i], fused.rhs[i]);
        let out = base + i as u32;
        for c in 0..chunks {
            let da = disp32::<W>(a, c * 4)?;
            let db = disp32::<W>(b, c * 4)?;
            let dout = disp32::<W>(out, c * 4)?;
            load(&mut code, 0x87, da); // ymm0 ← a
            load(&mut code, 0x8F, db); // ymm1 ← b
            match op {
                FusedOp::And => op_y0_y0_y1(&mut code, 0xDB),
                FusedOp::Nand => {
                    op_y0_y0_y1(&mut code, 0xDB);
                    not_y0(&mut code);
                }
                FusedOp::Or => op_y0_y0_y1(&mut code, 0xEB),
                FusedOp::Nor => {
                    op_y0_y0_y1(&mut code, 0xEB);
                    not_y0(&mut code);
                }
                FusedOp::Xor => op_y0_y0_y1(&mut code, 0xEF),
                FusedOp::Xnor => {
                    op_y0_y0_y1(&mut code, 0xEF);
                    not_y0(&mut code);
                }
                // AndN(a, b) = ~a & b: vpandn dst, vvvv, rm computes
                // ~vvvv & rm, so vvvv=ymm0 (a), rm=ymm1 (b).
                FusedOp::AndN => op_y0_y0_y1(&mut code, 0xDF),
                // OrN(a, b) = ~a | b = ~(a & ~b): vpandn ymm0, ymm1,
                // ymm0 gives ~b & a = a & ~b, then complement.
                FusedOp::OrN => {
                    andn_y0_y1_y0(&mut code);
                    not_y0(&mut code);
                }
            }
            store(&mut code, dout);
        }
    }
    code.extend_from_slice(&[0xC5, 0xF8, 0x77]); // vzeroupper
    code.push(0xC3); // ret
    Some(code)
}

/// Wide-word evaluator driving a [`JitKernel`] — protocol-compatible
/// with [`TapeSim`](crate::TapeSim)/[`FusedSim`](crate::FusedSim), with
/// the slot batches held in one flat contiguous buffer (the layout the
/// emitted code addresses).
pub struct JitSim<'f, const W: usize> {
    fused: &'f FusedTape,
    kernel: JitKernel,
    /// Flat `num_slots × W` buffer; slot `s` occupies
    /// `slots[s*W .. (s+1)*W]`.
    slots: Vec<u64>,
    latch: Vec<[u64; W]>,
}

impl<'f, const W: usize> JitSim<'f, W> {
    /// Compiles `fused` and wraps it in an evaluator, or `None` when
    /// the host cannot run jitted code.
    pub fn new(fused: &'f FusedTape) -> Option<Self> {
        let kernel = JitKernel::compile::<W>(fused)?;
        Some(JitSim {
            fused,
            kernel,
            slots: vec![0; fused.num_slots() * W],
            latch: vec![[0; W]; fused.num_ffs()],
        })
    }

    /// The compiled kernel (for stats: code size, emitter tag).
    #[inline]
    pub fn kernel(&self) -> &JitKernel {
        &self.kernel
    }

    /// The fused tape the kernel was compiled from.
    #[inline]
    pub fn fused(&self) -> &'f FusedTape {
        self.fused
    }

    #[inline]
    fn read(&self, slot: usize) -> [u64; W] {
        let mut v = [0u64; W];
        v.copy_from_slice(&self.slots[slot * W..slot * W + W]);
        v
    }

    #[inline]
    fn write(&mut self, slot: usize, words: [u64; W]) {
        self.slots[slot * W..slot * W + W].copy_from_slice(&words);
    }

    /// Sets the `64 × W` lanes of primary input `pi`.
    #[inline]
    pub fn set_input(&mut self, pi: usize, words: [u64; W]) {
        assert!(pi < self.fused.num_inputs(), "primary input out of range");
        self.write(self.fused.pi_slot(pi), words);
    }

    /// Sets the `64 × W` lanes of FF `ff`'s state.
    #[inline]
    pub fn set_state(&mut self, ff: usize, words: [u64; W]) {
        assert!(ff < self.fused.num_ffs(), "flip-flop out of range");
        self.write(self.fused.ff_slot(ff), words);
    }

    /// Current state of FF `ff`.
    #[inline]
    pub fn state(&self, ff: usize) -> [u64; W] {
        assert!(ff < self.fused.num_ffs(), "flip-flop out of range");
        self.read(self.fused.ff_slot(ff))
    }

    /// Runs the compiled kernel: one call evaluates the whole fused
    /// stream for the current inputs and state.
    #[inline]
    pub fn eval(&mut self) {
        self.kernel.run(&mut self.slots);
    }

    /// Resolves a [`FusedRef`] against the current slot values.
    #[inline]
    pub fn resolve(&self, r: FusedRef) -> [u64; W] {
        match r {
            FusedRef::Const(true) => [u64::MAX; W],
            FusedRef::Const(false) => [0; W],
            FusedRef::Slot { slot, inv } => {
                let mut v = self.read(slot as usize);
                if inv {
                    for l in v.iter_mut() {
                        *l = !*l;
                    }
                }
                v
            }
        }
    }

    /// FF `ff`'s D-input value from the most recent `eval`.
    #[inline]
    pub fn next_state(&self, ff: usize) -> [u64; W] {
        self.resolve(self.fused.ff_d(ff))
    }

    /// Latches every FF's D-input value (positive clock edge).
    pub fn clock(&mut self) {
        for ff in 0..self.fused.num_ffs() {
            self.latch[ff] = self.resolve(self.fused.ff_d(ff));
        }
        for ff in 0..self.fused.num_ffs() {
            self.write(self.fused.ff_slot(ff), self.latch[ff]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;
    use crate::FusedSim;
    use mcp_logic::GateKind;
    use mcp_netlist::{Netlist, NetlistBuilder};

    fn alu_ish() -> Netlist {
        let mut b = NetlistBuilder::new("alu");
        let x = b.input("X");
        let y = b.input("Y");
        let f0 = b.dff("F0");
        let f1 = b.dff("F1");
        let nx = b.gate("NX", GateKind::Not, [x]).unwrap();
        let g1 = b.gate("G1", GateKind::And, [nx, f0]).unwrap();
        let g2 = b.gate("G2", GateKind::Nor, [g1, y]).unwrap();
        let g3 = b.gate("G3", GateKind::Xor, [g2, f1]).unwrap();
        let g4 = b.gate("G4", GateKind::Nand, [g3, x]).unwrap();
        let g5 = b.gate("G5", GateKind::Xnor, [g4, g1]).unwrap();
        b.set_dff_input(f0, g5).unwrap();
        b.set_dff_input(f1, g3).unwrap();
        b.mark_output(f0);
        b.finish().unwrap()
    }

    fn diff_against_fused<const W: usize>(nl: &Netlist) {
        let tape = Tape::compile(nl);
        let fused = FusedTape::lower(&tape);
        let Some(mut jit) = JitSim::<W>::new(&fused) else {
            // Non-x86-64 host: the fallback ladder covers it.
            return;
        };
        let mut int = FusedSim::<W>::new(&fused);
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed
        };
        for _ in 0..8 {
            for pi in 0..fused.num_inputs() {
                let mut w = [0u64; W];
                for l in w.iter_mut() {
                    *l = next();
                }
                jit.set_input(pi, w);
                int.set_input(pi, w);
            }
            jit.eval();
            int.eval();
            for ff in 0..fused.num_ffs() {
                assert_eq!(jit.next_state(ff), int.next_state(ff), "ff {ff}");
            }
            jit.clock();
            int.clock();
            for ff in 0..fused.num_ffs() {
                assert_eq!(jit.state(ff), int.state(ff), "ff {ff} post-clock");
            }
        }
    }

    #[test]
    fn jit_matches_fused_interpreter_at_w1() {
        // W=1 is not divisible by 4, so this exercises the scalar
        // emitter even on AVX2 hosts.
        diff_against_fused::<1>(&alu_ish());
    }

    #[test]
    fn jit_matches_fused_interpreter_at_w4_and_w8() {
        diff_against_fused::<4>(&alu_ish());
        diff_against_fused::<8>(&alu_ish());
    }

    #[test]
    fn jit_matches_fused_on_the_quick_suite() {
        for nl in mcp_gen::suite::quick_suite() {
            diff_against_fused::<4>(&nl);
        }
    }

    #[test]
    fn compile_reports_code_size_and_tag() {
        let tape = Tape::compile(&alu_ish());
        let fused = FusedTape::lower(&tape);
        if let Some(k) = JitKernel::compile::<4>(&fused) {
            assert!(k.code_bytes() > 0);
            assert!(k.tag().starts_with("jit-"));
            assert_eq!(k.required_words(), fused.num_slots() * 4);
        } else if cfg!(all(target_arch = "x86_64", target_os = "linux")) {
            panic!("compile() must succeed on x86-64 Linux");
        }
    }

    #[test]
    fn run_rejects_short_slot_buffers() {
        let tape = Tape::compile(&alu_ish());
        let fused = FusedTape::lower(&tape);
        let Some(k) = JitKernel::compile::<4>(&fused) else {
            return;
        };
        let mut short = vec![0u64; k.required_words() - 1];
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            k.run(&mut short);
        }));
        assert!(r.is_err(), "short buffer must be rejected");
    }

    /// The graceful-fallback contract: on a non-x86-64 (or non-Linux)
    /// host `compile` returns `None` rather than emitting anything —
    /// this is what the filter's tier dispatch relies on. On the JIT's
    /// own target this asserts the inverse.
    #[test]
    fn non_native_hosts_fall_back_gracefully() {
        let tape = Tape::compile(&alu_ish());
        let fused = FusedTape::lower(&tape);
        let compiled = JitKernel::compile::<4>(&fused).is_some();
        assert_eq!(
            compiled,
            cfg!(all(target_arch = "x86_64", target_os = "linux")),
            "JIT availability must exactly track the supported target"
        );
    }
}
