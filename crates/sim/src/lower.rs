//! Fusing/vectorizing lowering tier over the compiled [`Tape`].
//!
//! The tape is already a flat three-address stream of binary ops, but it
//! still spends instructions on artifacts of gate-level decomposition:
//! every `NOT` is a `NAND(a, a)` occupying a slot, and inverters feeding
//! inverting gates chain two instructions where the target ISA (and the
//! wide interpreter) can express the composition in one. [`FusedTape`]
//! lowers the tape **once more**, at compile time:
//!
//! * **NOT fusion** — `NAND(a, a)` emits nothing; the inversion rides on
//!   the operand reference as a polarity bit and is folded into the
//!   *consuming* instruction's opcode. The fused opcode set
//!   ([`FusedOp`]) is closed under operand and output negation (De
//!   Morgan), so any combination of input/output polarities lowers to
//!   exactly one fused instruction — `AND(¬a, b)` becomes `ANDN`
//!   (x86 `vpandn`), `¬(a ∨ ¬b)` becomes `ANDN` with swapped operands,
//!   XOR polarities fold into the XOR/XNOR parity, and so on.
//! * **Constant/degenerate cascade** — operand constants (and
//!   same-slot operand pairs like `XOR(a, a)`) fold exactly as the
//!   tape's own compile-time folder does, and the fold cascades through
//!   downstream references.
//! * **Dead-slot elimination** — instructions not reachable backward
//!   from any FF D input are dropped, and the surviving slots are
//!   densely renumbered so `[u64; W]` batches form one straight-line,
//!   gap-free block (the layout the JIT emitter and the
//!   autovectorizer both want). [`FusedTape::lower_keep_all`] keeps
//!   every slot live instead, for per-node differential tests.
//!
//! [`FusedSim`] evaluates the fused stream exactly like
//! [`TapeSim`](crate::TapeSim) evaluates the raw one; the JIT
//! (`crate::jit`) emits native code for the same stream. Both read their
//! FF D values through [`FusedRef`]s, whose polarity bit applies any
//! residual output inversion at readout — never during the hot loop.

use crate::tape::{Op, SlotRef, Tape};

/// Fused binary opcodes. The set is the And/Or/Xor families closed
/// under operand and output negation: `AndN(a, b) = ¬a ∧ b` and
/// `OrN(a, b) = ¬a ∨ b` absorb mixed-polarity operands (x86:
/// `vpandn`, resp. `vpandn` + complement), the inverting family
/// members absorb output negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedOp {
    /// `a ∧ b`
    And,
    /// `¬(a ∧ b)`
    Nand,
    /// `a ∨ b`
    Or,
    /// `¬(a ∨ b)`
    Nor,
    /// `a ⊕ b`
    Xor,
    /// `¬(a ⊕ b)`
    Xnor,
    /// `¬a ∧ b`
    AndN,
    /// `¬a ∨ b`
    OrN,
}

/// Where a value lives after fusion: a compile-time constant, or a
/// fused slot read with an optional polarity flip (the residue of a
/// fused trailing NOT that no downstream instruction absorbed — e.g. an
/// inverter feeding an FF D input directly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedRef {
    /// The value folded to a compile-time constant.
    Const(bool),
    /// The value lives in a fused slot, complemented when `inv` is set.
    Slot {
        /// Fused slot index.
        slot: u32,
        /// Whether the reader complements the slot value.
        inv: bool,
    },
}

impl FusedRef {
    fn invert(self) -> FusedRef {
        match self {
            FusedRef::Const(v) => FusedRef::Const(!v),
            FusedRef::Slot { slot, inv } => FusedRef::Slot { slot, inv: !inv },
        }
    }
}

/// The base Boolean function of a tape opcode, with its output polarity
/// split off so fusion can re-fold it.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Base {
    And,
    Or,
    Xor,
}

/// A [`Tape`] lowered through NOT fusion, constant cascading and
/// dead-slot elimination. Slot layout matches the tape's convention:
/// slots `0 .. num_inputs` are the primary inputs, slots
/// `num_inputs .. num_inputs + num_ffs` the FF states, and fused
/// instruction `i` writes slot `num_inputs + num_ffs + i`.
#[derive(Debug, Clone)]
pub struct FusedTape {
    num_slots: usize,
    num_inputs: usize,
    num_ffs: usize,
    /// SoA fused instruction stream. Crate-visible for the interpreter
    /// and the JIT emitter.
    pub(crate) opcode: Vec<FusedOp>,
    pub(crate) lhs: Vec<u32>,
    pub(crate) rhs: Vec<u32>,
    /// Resolved location of every FF's D-input value, by FF index.
    pub(crate) ff_d: Vec<FusedRef>,
    /// Resolved location of every original *tape* slot, or `None` for a
    /// slot whose instruction dead-slot elimination removed. Fully
    /// populated under [`lower_keep_all`](Self::lower_keep_all).
    slot_map: Vec<Option<FusedRef>>,
}

impl FusedTape {
    /// Lowers `tape` with dead-slot elimination rooted at the FF D
    /// inputs — the production configuration: only logic that can reach
    /// sequential state survives.
    pub fn lower(tape: &Tape) -> FusedTape {
        Self::lower_with(tape, false)
    }

    /// Lowers `tape` keeping **every** tape slot live (no dead-slot
    /// elimination), so the value of any original node remains
    /// recoverable through [`tape_ref`](Self::tape_ref). Used by the
    /// per-node differential tests; the production path uses
    /// [`lower`](Self::lower).
    pub fn lower_keep_all(tape: &Tape) -> FusedTape {
        Self::lower_with(tape, true)
    }

    fn lower_with(tape: &Tape, keep_all: bool) -> FusedTape {
        let base = tape.num_inputs() + tape.num_ffs();
        // Resolution of every tape slot into the *pre-liveness* fused
        // value space: ids `0 .. base` are the base slots, id `base + j`
        // is pre-liveness fused instruction `j`.
        let mut res: Vec<FusedRef> = (0..base as u32)
            .map(|s| FusedRef::Slot {
                slot: s,
                inv: false,
            })
            .collect();
        let mut ops: Vec<(FusedOp, u32, u32)> = Vec::with_capacity(tape.num_ops());

        for i in 0..tape.num_ops() {
            let (op, a, b) = (tape.opcode[i], tape.lhs[i], tape.rhs[i]);
            let ra = res[a as usize];
            let rb = res[b as usize];
            // The tape spells NOT as NAND(a, a): fuse it into a
            // polarity flip on the operand reference.
            let r = if op == Op::Nand && a == b {
                ra.invert()
            } else {
                let (base_fn, out_inv) = match op {
                    Op::And => (Base::And, false),
                    Op::Nand => (Base::And, true),
                    Op::Or => (Base::Or, false),
                    Op::Nor => (Base::Or, true),
                    Op::Xor => (Base::Xor, false),
                    Op::Xnor => (Base::Xor, true),
                };
                lower_bin(&mut ops, base as u32, base_fn, out_inv, ra, rb)
            };
            res.push(r);
        }

        // Liveness, rooted at the FF D inputs (or everywhere in
        // keep-all mode). Operand ids are always smaller than the
        // instruction's own id, so one reverse sweep propagates.
        let mut live = vec![false; ops.len()];
        let mark = |r: FusedRef, live: &mut Vec<bool>| {
            if let FusedRef::Slot { slot, .. } = r {
                if slot as usize >= base {
                    live[slot as usize - base] = true;
                }
            }
        };
        for ff in 0..tape.num_ffs() {
            mark(resolve_tape_ref(&res, tape.ff_d[ff]), &mut live);
        }
        if keep_all {
            for &r in &res {
                mark(r, &mut live);
            }
        }
        for j in (0..ops.len()).rev() {
            if live[j] {
                let (_, a, b) = ops[j];
                if a as usize >= base {
                    live[a as usize - base] = true;
                }
                if b as usize >= base {
                    live[b as usize - base] = true;
                }
            }
        }

        // Dense renumbering of the survivors.
        let mut new_slot = vec![u32::MAX; ops.len()];
        let mut next = base as u32;
        for (j, &alive) in live.iter().enumerate() {
            if alive {
                new_slot[j] = next;
                next += 1;
            }
        }
        let renumber = |id: u32| -> u32 {
            if (id as usize) < base {
                id
            } else {
                new_slot[id as usize - base]
            }
        };
        let remap = |r: FusedRef| -> Option<FusedRef> {
            match r {
                FusedRef::Const(v) => Some(FusedRef::Const(v)),
                FusedRef::Slot { slot, inv } => {
                    if (slot as usize) < base {
                        Some(FusedRef::Slot { slot, inv })
                    } else if live[slot as usize - base] {
                        Some(FusedRef::Slot {
                            slot: new_slot[slot as usize - base],
                            inv,
                        })
                    } else {
                        None
                    }
                }
            }
        };

        let mut opcode = Vec::with_capacity(next as usize - base);
        let mut lhs = Vec::with_capacity(opcode.capacity());
        let mut rhs = Vec::with_capacity(opcode.capacity());
        for (j, &(op, a, b)) in ops.iter().enumerate() {
            if live[j] {
                opcode.push(op);
                lhs.push(renumber(a));
                rhs.push(renumber(b));
            }
        }
        let ff_d: Vec<FusedRef> = (0..tape.num_ffs())
            .map(|ff| {
                remap(resolve_tape_ref(&res, tape.ff_d[ff]))
                    .expect("FF D inputs root the liveness sweep")
            })
            .collect();
        let slot_map: Vec<Option<FusedRef>> = (0..tape.num_slots())
            .map(|s| {
                remap(if s < base {
                    FusedRef::Slot {
                        slot: s as u32,
                        inv: false,
                    }
                } else {
                    res[s]
                })
            })
            .collect();

        FusedTape {
            num_slots: next as usize,
            num_inputs: tape.num_inputs(),
            num_ffs: tape.num_ffs(),
            opcode,
            lhs,
            rhs,
            ff_d,
            slot_map,
        }
    }

    /// Number of runtime value slots (inputs + FF states + fused
    /// instruction outputs).
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Number of fused instructions — the per-pass work of the fused
    /// interpreter and the JIT. Never more than the unfused
    /// [`Tape::num_ops`]; NOT fusion and dead-slot elimination only
    /// shrink it.
    #[inline]
    pub fn num_ops(&self) -> usize {
        self.opcode.len()
    }

    /// Number of primary inputs.
    #[inline]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of flip-flops.
    #[inline]
    pub fn num_ffs(&self) -> usize {
        self.num_ffs
    }

    /// The runtime slot of primary input `pi` (same layout as the tape).
    #[inline]
    pub fn pi_slot(&self, pi: usize) -> usize {
        debug_assert!(pi < self.num_inputs);
        pi
    }

    /// The runtime slot holding FF `ff`'s state.
    #[inline]
    pub fn ff_slot(&self, ff: usize) -> usize {
        debug_assert!(ff < self.num_ffs);
        self.num_inputs + ff
    }

    /// Where FF `ff`'s D-input value lives after an eval pass.
    #[inline]
    pub fn ff_d(&self, ff: usize) -> FusedRef {
        self.ff_d[ff]
    }

    /// Maps an original tape [`SlotRef`] into the fused value space, or
    /// `None` when the referenced slot was dead-slot-eliminated (never
    /// under [`lower_keep_all`](Self::lower_keep_all)).
    pub fn tape_ref(&self, r: SlotRef) -> Option<FusedRef> {
        match r {
            SlotRef::Const(v) => Some(FusedRef::Const(v)),
            SlotRef::Slot(s) => self.slot_map[s as usize],
        }
    }
}

/// Maps a tape-level [`SlotRef`] through the per-slot resolution table.
fn resolve_tape_ref(res: &[FusedRef], r: SlotRef) -> FusedRef {
    match r {
        SlotRef::Const(v) => FusedRef::Const(v),
        SlotRef::Slot(s) => res[s as usize],
    }
}

/// Folds or emits one binary instruction of base function `base_fn`
/// with output polarity `out_inv` over resolved operands. Constants and
/// same-slot operand pairs fold; everything else emits exactly one
/// fused instruction whose opcode absorbs all three polarities.
fn lower_bin(
    ops: &mut Vec<(FusedOp, u32, u32)>,
    first_op_slot: u32,
    base_fn: Base,
    out_inv: bool,
    ra: FusedRef,
    rb: FusedRef,
) -> FusedRef {
    use FusedRef::{Const, Slot};
    let apply_out = |r: FusedRef| if out_inv { r.invert() } else { r };
    let folded = match (base_fn, ra, rb) {
        (Base::And, Const(a), Const(b)) => Some(Const(a && b)),
        (Base::And, Const(false), _) | (Base::And, _, Const(false)) => Some(Const(false)),
        (Base::And, Const(true), x) | (Base::And, x, Const(true)) => Some(x),
        (Base::Or, Const(a), Const(b)) => Some(Const(a || b)),
        (Base::Or, Const(true), _) | (Base::Or, _, Const(true)) => Some(Const(true)),
        (Base::Or, Const(false), x) | (Base::Or, x, Const(false)) => Some(x),
        (Base::Xor, Const(a), Const(b)) => Some(Const(a ^ b)),
        (Base::Xor, Const(c), x) | (Base::Xor, x, Const(c)) => Some(if c { x.invert() } else { x }),
        (_, Slot { slot: a, inv: ia }, Slot { slot: b, inv: ib }) if a == b => {
            Some(match base_fn {
                // AND(x, x) = x; AND(x, ¬x) = 0.
                Base::And => {
                    if ia == ib {
                        ra
                    } else {
                        Const(false)
                    }
                }
                Base::Or => {
                    if ia == ib {
                        ra
                    } else {
                        Const(true)
                    }
                }
                Base::Xor => Const(ia != ib),
            })
        }
        _ => None,
    };
    if let Some(r) = folded {
        return apply_out(r);
    }
    let (Slot { slot: a, inv: ia }, Slot { slot: b, inv: ib }) = (ra, rb) else {
        unreachable!("const operands fold above");
    };
    // Every (input polarity, input polarity, output polarity)
    // combination of the And/Or families maps to one fused opcode; XOR
    // polarities collapse into the output parity.
    let (op, a, b) = match base_fn {
        Base::And => match (ia, ib, out_inv) {
            (false, false, false) => (FusedOp::And, a, b),
            (false, false, true) => (FusedOp::Nand, a, b),
            (true, false, false) => (FusedOp::AndN, a, b),
            (true, false, true) => (FusedOp::OrN, b, a), // ¬(¬a∧b) = ¬b∨a
            (false, true, false) => (FusedOp::AndN, b, a),
            (false, true, true) => (FusedOp::OrN, a, b), // ¬(a∧¬b) = ¬a∨b
            (true, true, false) => (FusedOp::Nor, a, b), // ¬a∧¬b
            (true, true, true) => (FusedOp::Or, a, b),
        },
        Base::Or => match (ia, ib, out_inv) {
            (false, false, false) => (FusedOp::Or, a, b),
            (false, false, true) => (FusedOp::Nor, a, b),
            (true, false, false) => (FusedOp::OrN, a, b),
            (true, false, true) => (FusedOp::AndN, b, a), // ¬(¬a∨b) = ¬b∧a
            (false, true, false) => (FusedOp::OrN, b, a),
            (false, true, true) => (FusedOp::AndN, a, b), // ¬(a∨¬b) = ¬a∧b
            (true, true, false) => (FusedOp::Nand, a, b), // ¬a∨¬b
            (true, true, true) => (FusedOp::And, a, b),
        },
        Base::Xor => {
            if out_inv ^ ia ^ ib {
                (FusedOp::Xnor, a, b)
            } else {
                (FusedOp::Xor, a, b)
            }
        }
    };
    let out = first_op_slot + ops.len() as u32;
    ops.push((op, a, b));
    Slot {
        slot: out,
        inv: false,
    }
}

/// Wide-word interpreter over a [`FusedTape`] — the portable middle
/// tier of the kernel ladder (JIT → fused → tape → reference), and the
/// fallback when the JIT cannot target the host.
///
/// Protocol and slot semantics mirror [`TapeSim`](crate::TapeSim).
#[derive(Debug, Clone)]
pub struct FusedSim<'f, const W: usize> {
    fused: &'f FusedTape,
    slots: Vec<[u64; W]>,
    /// Clock-latch scratch; see `TapeSim::latch`.
    latch: Vec<[u64; W]>,
}

impl<'f, const W: usize> FusedSim<'f, W> {
    /// Creates an evaluator with all inputs and state zero.
    pub fn new(fused: &'f FusedTape) -> Self {
        FusedSim {
            fused,
            slots: vec![[0; W]; fused.num_slots()],
            latch: vec![[0; W]; fused.num_ffs()],
        }
    }

    /// The fused tape this evaluator runs.
    #[inline]
    pub fn fused(&self) -> &'f FusedTape {
        self.fused
    }

    /// Sets the `64 × W` lanes of primary input `pi`.
    #[inline]
    pub fn set_input(&mut self, pi: usize, words: [u64; W]) {
        assert!(pi < self.fused.num_inputs, "primary input out of range");
        self.slots[self.fused.pi_slot(pi)] = words;
    }

    /// Sets the `64 × W` lanes of FF `ff`'s state.
    #[inline]
    pub fn set_state(&mut self, ff: usize, words: [u64; W]) {
        assert!(ff < self.fused.num_ffs, "flip-flop out of range");
        self.slots[self.fused.ff_slot(ff)] = words;
    }

    /// Current state of FF `ff`.
    #[inline]
    pub fn state(&self, ff: usize) -> [u64; W] {
        assert!(ff < self.fused.num_ffs, "flip-flop out of range");
        self.slots[self.fused.ff_slot(ff)]
    }

    /// Runs the fused instruction stream: one forward sweep evaluates
    /// the combinational logic for the current inputs and state.
    pub fn eval(&mut self) {
        let f = self.fused;
        let base = f.num_inputs + f.num_ffs;
        for (out, ((&op, &a), &b)) in
            (base..).zip(f.opcode.iter().zip(f.lhs.iter()).zip(f.rhs.iter()))
        {
            let va = self.slots[a as usize];
            let vb = self.slots[b as usize];
            let mut v = [0u64; W];
            match op {
                FusedOp::And => {
                    for l in 0..W {
                        v[l] = va[l] & vb[l];
                    }
                }
                FusedOp::Nand => {
                    for l in 0..W {
                        v[l] = !(va[l] & vb[l]);
                    }
                }
                FusedOp::Or => {
                    for l in 0..W {
                        v[l] = va[l] | vb[l];
                    }
                }
                FusedOp::Nor => {
                    for l in 0..W {
                        v[l] = !(va[l] | vb[l]);
                    }
                }
                FusedOp::Xor => {
                    for l in 0..W {
                        v[l] = va[l] ^ vb[l];
                    }
                }
                FusedOp::Xnor => {
                    for l in 0..W {
                        v[l] = !(va[l] ^ vb[l]);
                    }
                }
                FusedOp::AndN => {
                    for l in 0..W {
                        v[l] = !va[l] & vb[l];
                    }
                }
                FusedOp::OrN => {
                    for l in 0..W {
                        v[l] = !va[l] | vb[l];
                    }
                }
            }
            self.slots[out] = v;
        }
    }

    /// Resolves a [`FusedRef`] against the current slot values,
    /// applying its polarity bit.
    #[inline]
    pub fn resolve(&self, r: FusedRef) -> [u64; W] {
        match r {
            FusedRef::Const(true) => [u64::MAX; W],
            FusedRef::Const(false) => [0; W],
            FusedRef::Slot { slot, inv } => {
                let mut v = self.slots[slot as usize];
                if inv {
                    for l in v.iter_mut() {
                        *l = !*l;
                    }
                }
                v
            }
        }
    }

    /// FF `ff`'s D-input value from the most recent `eval`.
    #[inline]
    pub fn next_state(&self, ff: usize) -> [u64; W] {
        self.resolve(self.fused.ff_d[ff])
    }

    /// Latches every FF's D-input value (positive clock edge).
    pub fn clock(&mut self) {
        for ff in 0..self.fused.num_ffs {
            self.latch[ff] = self.resolve(self.fused.ff_d[ff]);
        }
        for ff in 0..self.fused.num_ffs {
            self.slots[self.fused.ff_slot(ff)] = self.latch[ff];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TapeSim;
    use mcp_logic::GateKind;
    use mcp_netlist::{Netlist, NetlistBuilder};

    /// D = NOT(AND(NOT(a), NOT(b))) — an OR spelled with three
    /// inverters, the canonical NOT-fusion workload.
    fn de_morgan() -> Netlist {
        let mut b = NetlistBuilder::new("dm");
        let a = b.input("A");
        let c = b.input("B");
        let na = b.gate("NA", GateKind::Not, [a]).unwrap();
        let nb = b.gate("NB", GateKind::Not, [c]).unwrap();
        let and = b.gate("AND", GateKind::And, [na, nb]).unwrap();
        let nand = b.gate("OUT", GateKind::Not, [and]).unwrap();
        let ff = b.dff("FF");
        b.set_dff_input(ff, nand).unwrap();
        b.mark_output(ff);
        b.finish().unwrap()
    }

    #[test]
    fn not_chains_fuse_to_a_single_instruction() {
        let nl = de_morgan();
        let tape = Tape::compile(&nl);
        // Unfused: NOT, NOT, AND, NOT = 4 instructions.
        assert_eq!(tape.num_ops(), 4);
        let fused = FusedTape::lower(&tape);
        // Fused: the two input inverters fold into the AND's opcode
        // (¬a ∧ ¬b = NOR), and the trailing inverter rides the FF D
        // reference's polarity bit — one instruction total.
        assert_eq!(fused.num_ops(), 1);
        assert_eq!(fused.opcode[0], FusedOp::Nor);
        assert!(
            matches!(fused.ff_d(0), FusedRef::Slot { inv: true, .. }),
            "the output inverter fuses into the D ref"
        );

        let mut sim = FusedSim::<1>::new(&fused);
        sim.set_input(0, [0b0011]);
        sim.set_input(1, [0b0101]);
        sim.eval();
        assert_eq!(sim.next_state(0), [0b0111]);
    }

    #[test]
    fn trailing_inverter_rides_the_ff_d_polarity_bit() {
        let mut b = NetlistBuilder::new("inv");
        let a = b.input("A");
        let n = b.gate("N", GateKind::Not, [a]).unwrap();
        let ff = b.dff("FF");
        b.set_dff_input(ff, n).unwrap();
        b.mark_output(ff);
        let nl = b.finish().unwrap();
        let tape = Tape::compile(&nl);
        assert_eq!(tape.num_ops(), 1, "the unfused tape spends a NAND");
        let fused = FusedTape::lower(&tape);
        assert_eq!(fused.num_ops(), 0, "the inversion fuses into the D ref");
        assert_eq!(
            fused.ff_d(0),
            FusedRef::Slot { slot: 0, inv: true },
            "D reads the input slot complemented"
        );
        let mut sim = FusedSim::<1>::new(&fused);
        sim.set_input(0, [0xF0F0]);
        sim.eval();
        assert_eq!(sim.next_state(0), [!0xF0F0]);
        sim.clock();
        assert_eq!(sim.state(0), [!0xF0F0]);
    }

    #[test]
    fn dead_logic_is_eliminated_unless_kept() {
        let mut b = NetlistBuilder::new("dead");
        let a = b.input("A");
        let c = b.input("B");
        // Dead: feeds only a primary output, never an FF.
        let dead = b.gate("DEAD", GateKind::Xor, [a, c]).unwrap();
        b.mark_output(dead);
        let live = b.gate("LIVE", GateKind::And, [a, c]).unwrap();
        let ff = b.dff("FF");
        b.set_dff_input(ff, live).unwrap();
        let nl = b.finish().unwrap();
        let tape = Tape::compile(&nl);
        assert_eq!(tape.num_ops(), 2);

        let pruned = FusedTape::lower(&tape);
        assert_eq!(pruned.num_ops(), 1, "the XOR cannot reach any FF");
        assert_eq!(
            pruned.tape_ref(tape.slot_of(dead)),
            None,
            "eliminated slots resolve to None"
        );
        assert!(pruned.tape_ref(tape.slot_of(live)).is_some());

        let kept = FusedTape::lower_keep_all(&tape);
        assert_eq!(kept.num_ops(), 2);
        let r = kept.tape_ref(tape.slot_of(dead)).expect("kept alive");
        let mut sim = FusedSim::<1>::new(&kept);
        sim.set_input(0, [0b0011]);
        sim.set_input(1, [0b0101]);
        sim.eval();
        assert_eq!(sim.resolve(r), [0b0110]);
    }

    #[test]
    fn mixed_polarity_gates_lower_to_one_fused_op_each() {
        // NOT(a) AND b  →  ANDN;  NOT(NOT(a) OR b)  →  ANDN swapped.
        let mut b = NetlistBuilder::new("pol");
        let a = b.input("A");
        let c = b.input("B");
        let na = b.gate("NA", GateKind::Not, [a]).unwrap();
        let andn = b.gate("ANDN", GateKind::And, [na, c]).unwrap();
        let orn = b.gate("NOR2", GateKind::Nor, [na, c]).unwrap();
        let f0 = b.dff("F0");
        let f1 = b.dff("F1");
        b.set_dff_input(f0, andn).unwrap();
        b.set_dff_input(f1, orn).unwrap();
        b.mark_output(f0);
        let nl = b.finish().unwrap();
        let tape = Tape::compile(&nl);
        let fused = FusedTape::lower(&tape);
        assert_eq!(fused.num_ops(), 2, "one fused op per gate, NOT absorbed");
        assert!(fused.opcode.contains(&FusedOp::AndN));

        let mut fsim = FusedSim::<2>::new(&fused);
        let mut tsim = TapeSim::<2>::new(&tape);
        for (s, v) in [(0usize, [0xAAu64, 0x0F]), (1, [0xCC, 0x33])] {
            fsim.set_input(s, v);
            tsim.set_input(s, v);
        }
        fsim.eval();
        tsim.eval();
        for ff in 0..2 {
            assert_eq!(fsim.next_state(ff), tsim.next_state(ff), "FF {ff}");
        }
    }

    #[test]
    fn fused_never_exceeds_unfused_op_count_on_the_suite() {
        for nl in mcp_gen::suite::quick_suite() {
            let tape = Tape::compile(&nl);
            let fused = FusedTape::lower(&tape);
            assert!(
                fused.num_ops() <= tape.num_ops(),
                "{}: fused {} > unfused {}",
                nl.name(),
                fused.num_ops(),
                tape.num_ops()
            );
        }
    }
}
