//! Minimal VCD (Value Change Dump) export of delay-simulation waveforms.
//!
//! Glitches found by [`DelaySim`](crate::DelaySim) become visible in any
//! standard wave viewer (GTKWave, Surfer, ...): record an edge with
//! [`DelaySim::record_waveforms`](crate::DelaySim::record_waveforms) and
//! dump it with [`write_vcd`].

use mcp_netlist::{Netlist, NodeId};
use std::io::{self, Write};

/// Writes a waveform as an IEEE-1364 VCD document.
///
/// `initial` gives every node's value at time 0 (before the first event);
/// `events` is the `(time, node, value)` trace from
/// [`EdgeReport::events`](crate::EdgeReport::events). Node names are used
/// as signal names; every node of the netlist is declared, scoped under
/// the circuit name.
///
/// # Errors
///
/// Propagates I/O errors from `w` (pass `&mut Vec<u8>` for in-memory use).
///
/// # Panics
///
/// Panics if `initial.len() != netlist.num_nodes()`.
pub fn write_vcd<W: Write>(
    netlist: &Netlist,
    initial: &[bool],
    events: &[(u64, NodeId, bool)],
    w: &mut W,
) -> io::Result<()> {
    assert_eq!(
        initial.len(),
        netlist.num_nodes(),
        "one initial value per node"
    );

    writeln!(w, "$comment mcpath transport-delay waveform $end")?;
    writeln!(w, "$timescale 1ns $end")?;
    writeln!(w, "$scope module {} $end", sanitize(netlist.name()))?;
    for (id, node) in netlist.nodes() {
        writeln!(
            w,
            "$var wire 1 {} {} $end",
            ident(id),
            sanitize(node.name())
        )?;
    }
    writeln!(w, "$upscope $end")?;
    writeln!(w, "$enddefinitions $end")?;

    writeln!(w, "#0")?;
    writeln!(w, "$dumpvars")?;
    for (id, _) in netlist.nodes() {
        writeln!(w, "{}{}", u8::from(initial[id.index()]), ident(id))?;
    }
    writeln!(w, "$end")?;

    let mut current = u64::MAX;
    for &(t, node, v) in events {
        if t != current {
            writeln!(w, "#{t}")?;
            current = t;
        }
        writeln!(w, "{}{}", u8::from(v), ident(node))?;
    }
    // Closing timestamp so viewers show the settled tail.
    let end = events.last().map_or(1, |&(t, _, _)| t + 1);
    writeln!(w, "#{end}")?;
    Ok(())
}

/// VCD identifier for a node: printable-ASCII base-94 of its index.
fn ident(id: NodeId) -> String {
    let mut n = id.index();
    let mut s = String::new();
    loop {
        s.push((33 + (n % 94)) as u8 as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}

/// VCD signal names may not contain whitespace; replace offenders.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DelaySim;
    use mcp_netlist::bench;

    fn hazard_circuit() -> Netlist {
        bench::parse(
            "hz",
            "INPUT(a)\nOUTPUT(y)\nq = DFF(y)\nna = NOT(a)\ny = OR(a, na)",
        )
        .expect("parse")
    }

    #[test]
    fn dumps_a_recorded_glitch() {
        let nl = hazard_circuit();
        let na = nl.find_node("na").unwrap();
        let y = nl.find_node("y").unwrap();
        let mut sim = DelaySim::new(&nl);
        sim.set_delay(na, 3);
        sim.record_waveforms(true);
        sim.init(&[true], &[false]);
        let initial: Vec<bool> = nl.nodes().map(|(id, _)| sim.value(id)).collect();
        let report = sim.edge(&[false], &[false]);
        assert!(report.glitched(y));
        assert!(!report.events().is_empty());

        let mut buf = Vec::new();
        write_vcd(&nl, &initial, report.events(), &mut buf).expect("write");
        let text = String::from_utf8(buf).expect("utf8");

        assert!(text.contains("$timescale 1ns $end"));
        assert!(text.contains("$scope module hz $end"));
        assert!(text.contains(" y $end"));
        // The glitch shows as y changing twice at distinct timestamps.
        let y_id = ident(y);
        let changes = text
            .lines()
            .filter(|l| l.ends_with(y_id.as_str()) && (l.starts_with('0') || l.starts_with('1')))
            .count();
        // initial dump + two glitch transitions
        assert_eq!(changes, 3, "{text}");
    }

    #[test]
    fn identifiers_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for k in 0..500 {
            let s = ident(NodeId::from_index(k));
            assert!(s.chars().all(|c| ('!'..='~').contains(&c)), "{s:?}");
            assert!(seen.insert(s));
        }
    }

    #[test]
    fn sanitize_replaces_whitespace() {
        assert_eq!(sanitize("a b\tc"), "a_b_c");
        assert_eq!(sanitize("plain"), "plain");
    }

    #[test]
    fn empty_event_list_still_produces_valid_header() {
        let nl = hazard_circuit();
        let initial = vec![false; nl.num_nodes()];
        let mut buf = Vec::new();
        write_vcd(&nl, &initial, &[], &mut buf).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        assert!(text.contains("$enddefinitions"));
        assert!(text.ends_with("#1\n"));
    }
}
