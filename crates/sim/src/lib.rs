//! Simulation engines for sequential netlists.
//!
//! Three simulators, each matched to a phase of the paper's flow:
//!
//! * [`ParallelSim`] — 64-lane bit-parallel two-valued simulation. One
//!   `u64` word per node carries 64 independent Boolean patterns, so a
//!   single pass over the levelized gates simulates 64 input vectors.
//!   This is the paper's "parallel pattern simulation".
//! * [`filter::mc_filter`] — the paper's step 2: repeated 2-clock random
//!   simulation that *disproves* the multi-cycle condition for most
//!   single-cycle FF pairs cheaply, stopping once no pair has been dropped
//!   for a configurable number of consecutive words (32 in the paper).
//! * [`EventSim`] — an event-driven three-valued simulator over the
//!   original netlist, used by tests and the examples for cycle-accurate
//!   inspection of small circuits.
//! * [`DelaySim`] — a two-valued transport-delay simulator that makes
//!   **dynamic glitches** observable, the delay-dependent ground truth the
//!   static hazard checks are validated against.
//!
//! # Example
//!
//! ```
//! use mcp_netlist::bench;
//! use mcp_sim::ParallelSim;
//!
//! let nl = bench::parse("t", "INPUT(A)\nOUTPUT(Q)\nQ = DFF(D)\nD = XOR(Q, A)")?;
//! let mut sim = ParallelSim::new(&nl);
//! sim.set_state(0, 0);              // Q = 0 in every lane
//! sim.set_input(0, u64::MAX);       // A = 1 in every lane
//! sim.eval();
//! assert_eq!(sim.next_state(0), u64::MAX); // Q toggles to 1 everywhere
//! # Ok::<(), mcp_netlist::bench::ParseBenchError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delay;
pub mod event;
pub mod filter;
pub mod parallel;
pub mod vcd;

pub use delay::{DelaySim, EdgeReport};
pub use event::EventSim;
pub use filter::{mc_filter, FilterConfig, FilterOutcome, PairDrop};
pub use parallel::ParallelSim;
