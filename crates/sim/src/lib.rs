//! Simulation engines for sequential netlists.
//!
//! Three simulators, each matched to a phase of the paper's flow:
//!
//! * [`ParallelSim`] — 64-lane bit-parallel two-valued simulation. One
//!   `u64` word per node carries 64 independent Boolean patterns, so a
//!   single pass over the levelized gates simulates 64 input vectors.
//!   This is the paper's "parallel pattern simulation".
//! * [`TapeSim`] — the compiled wide-lane kernel: [`Tape::compile`] lowers
//!   the netlist once into a flat, levelized instruction tape (constants
//!   folded, buffers chained away), and a const-generic `[u64; W]` word
//!   evaluates `64 × W` patterns per pass. Observationally identical to
//!   `ParallelSim` lane-for-lane, several times faster per node-eval.
//! * [`FusedSim`] / [`JitSim`] — the optimizing tiers above the tape:
//!   [`FusedTape::lower`] fuses NOT/NAND chains into operand polarity
//!   bits, folds constants, and dead-slot-eliminates logic that cannot
//!   reach an FF; [`FusedSim`] interprets that stream, and
//!   [`JitKernel::compile`] emits native x86-64 (AVX2 or scalar-`u64`)
//!   machine code for it. The kernel ladder (jit → fused → tape →
//!   reference) is selected by [`FilterConfig::kernel`] and every tier
//!   is differentially oracled to byte-identical [`FilterOutcome`]s.
//! * [`filter::mc_filter`] — the paper's step 2: repeated 2-clock random
//!   simulation that *disproves* the multi-cycle condition for most
//!   single-cycle FF pairs cheaply, stopping once no pair has been dropped
//!   for a configurable number of consecutive words (32 in the paper).
//!   Runs on the tape kernel by default (`FilterConfig::lanes` selects the
//!   width) with a lane-width determinism contract: the outcome is
//!   byte-identical to the 64-lane reference at every supported width.
//! * [`EventSim`] — an event-driven three-valued simulator over the
//!   original netlist, used by tests and the examples for cycle-accurate
//!   inspection of small circuits.
//! * [`DelaySim`] — a two-valued transport-delay simulator that makes
//!   **dynamic glitches** observable, the delay-dependent ground truth the
//!   static hazard checks are validated against.
//!
//! # Example
//!
//! ```
//! use mcp_netlist::bench;
//! use mcp_sim::ParallelSim;
//!
//! let nl = bench::parse("t", "INPUT(A)\nOUTPUT(Q)\nQ = DFF(D)\nD = XOR(Q, A)")?;
//! let mut sim = ParallelSim::new(&nl);
//! sim.set_state(0, 0);              // Q = 0 in every lane
//! sim.set_input(0, u64::MAX);       // A = 1 in every lane
//! sim.eval();
//! assert_eq!(sim.next_state(0), u64::MAX); // Q toggles to 1 everywhere
//! # Ok::<(), mcp_netlist::bench::ParseBenchError>(())
//! ```

// `deny` rather than `forbid`: the JIT's mmap/emit module (`jit`) is the
// one audited exception and opts back in with a module-level allow;
// `forbid` would make that override impossible.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod delay;
pub mod event;
pub mod filter;
pub mod jit;
pub mod lower;
pub mod parallel;
pub mod tape;
pub mod vcd;

pub use delay::{DelaySim, EdgeReport};
pub use event::EventSim;
pub use filter::{
    mc_filter, mc_filter_stats, mc_filter_stats_seeded, FilterConfig, FilterOutcome, FilterStats,
    PairDrop, SimKernel,
};
pub use jit::{JitKernel, JitSim};
pub use lower::{FusedOp, FusedRef, FusedSim, FusedTape};
pub use parallel::ParallelSim;
pub use tape::{SlotRef, Tape, TapeSim};
