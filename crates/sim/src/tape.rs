//! Compiled wide-lane simulation kernel.
//!
//! [`ParallelSim`](crate::ParallelSim) walks the netlist graph on every
//! pass: per-gate enum dispatch, a fanin-id indirection per input, and a
//! scratch copy of every fanin word. That is fine for a handful of
//! passes, but the random-pattern prefilter (paper step 2) runs hundreds
//! of passes over the whole circuit — the last un-compiled hot path of
//! the pipeline.
//!
//! [`Tape`] lowers the netlist **once** into a flat, levelized
//! instruction tape of pure **binary** operations in structure-of-arrays
//! layout (opcode / left slot / right slot), folding constants and
//! chaining buffers away at compile time:
//!
//! * `Const` drivers never occupy a runtime slot — readers fold them
//!   into the instruction (a controlling constant folds the whole gate,
//!   non-controlling constants are dropped from the fanin list, XOR
//!   parity constants flip the opcode between XOR and XNOR);
//! * `BUF` gates (and single-input AND/OR after folding) emit no
//!   instruction at all — their readers alias the source slot;
//! * a gate whose folded fanin list becomes empty is itself a constant,
//!   and the fold cascades through its readers;
//! * an `n`-input gate decomposes into a chain of `n - 1` binary
//!   instructions (the inversion of NAND/NOR/XNOR lands on the last
//!   link), and `NOT(a)` becomes `NAND(a, a)` — so the evaluator is a
//!   single flat load–load–op–store loop with no per-instruction fanin
//!   iteration, no arity dispatch, and an output slot that is implicit
//!   in the instruction index.
//!
//! [`TapeSim`] evaluates the tape with **const-generic wide words**
//! `[u64; W]`: one pass simulates `64 × W` independent Boolean patterns.
//! `W` is a compile-time constant, so the per-instruction inner loop
//! unrolls into straight-line word ops with no lane branching.
//!
//! The kernel is observationally identical to `ParallelSim` lane-for-lane
//! (see `tests/tape_diff.rs`): every original node's value — including
//! folded and aliased ones — is recoverable through [`Tape::slot_of`] /
//! [`TapeSim::value`].

use mcp_logic::{GateKind, V3};
use mcp_netlist::{Netlist, NodeId, NodeKind};

/// Where a node's value lives after compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotRef {
    /// The value is computed into (or set on) a runtime slot.
    Slot(u32),
    /// The value folded to a compile-time constant.
    Const(bool),
}

/// Binary tape opcodes. `Buf` never appears (aliased away) and `Not`
/// has no opcode of its own (`NAND(a, a)`); the inverting opcodes close
/// a decomposed n-ary chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Op {
    And,
    Nand,
    Or,
    Nor,
    Xor,
    Xnor,
}

/// A netlist compiled into a flat, levelized instruction tape.
///
/// Slot layout: slots `0 .. num_inputs` are the primary inputs (in
/// declaration order), slots `num_inputs .. num_inputs + num_ffs` are
/// the flip-flop states (in FF-index order), and instruction `i` writes
/// slot `num_inputs + num_ffs + i` — the output slot is implicit in the
/// instruction index. Instructions are in the netlist's topological
/// gate order, so a single forward sweep evaluates the combinational
/// logic, and every instruction only reads slots below its own.
#[derive(Debug, Clone)]
pub struct Tape {
    num_slots: usize,
    num_inputs: usize,
    num_ffs: usize,
    /// SoA instruction stream: one entry per emitted binary instruction.
    /// Crate-visible so the fusing lowering pass (`crate::lower`) can
    /// walk the stream without re-deriving it from the netlist.
    pub(crate) opcode: Vec<Op>,
    /// Left operand slot of instruction `i`.
    pub(crate) lhs: Vec<u32>,
    /// Right operand slot of instruction `i` (`lhs[i]` again for NOT).
    pub(crate) rhs: Vec<u32>,
    /// Resolved location of every original node's value, by node index.
    node_ref: Vec<SlotRef>,
    /// Resolved location of every FF's D-input value, by FF index.
    pub(crate) ff_d: Vec<SlotRef>,
}

impl Tape {
    /// Compiles `netlist` into a tape. One-time cost, linear in the
    /// netlist size; every [`TapeSim`] built on the result shares it.
    pub fn compile(netlist: &Netlist) -> Tape {
        Tape::compile_with_consts(netlist, &[])
    }

    /// [`compile`](Self::compile) with externally proven constants:
    /// `consts[id]` is a ternary value per node (typically the first
    /// Kleene iterate of `mcp-lint`'s constant lattice), and every
    /// *gate* with a definite entry is pinned to [`SlotRef::Const`]
    /// before instruction emission — it emits nothing, and the fold
    /// cascades through its readers exactly like a native `Const`
    /// driver. An empty slice disables pinning (plain `compile`).
    ///
    /// Soundness is the caller's burden: a pinned gate must actually
    /// hold its value under every stimulus the tape will see. The
    /// tape's own cascade folder derives the same fold set from native
    /// `Const` drivers (both are correlation-blind forward ternary
    /// propagation with X at every PI and FF), so for the lattice's
    /// base iterate the pinned compile is pinned *identical* — see
    /// `seeded_compile_matches_the_cascade_folder` — and the seeding
    /// exists to keep that equivalence enforced rather than assumed.
    ///
    /// # Panics
    ///
    /// Panics if `consts` is non-empty and shorter than the node count.
    pub fn compile_with_consts(netlist: &Netlist, consts: &[V3]) -> Tape {
        let num_inputs = netlist.num_inputs();
        let num_ffs = netlist.num_ffs();
        let mut node_ref = vec![SlotRef::Const(false); netlist.num_nodes()];
        for (i, &pi) in netlist.inputs().iter().enumerate() {
            node_ref[pi.index()] = SlotRef::Slot(i as u32);
        }
        for (k, &ff) in netlist.dffs().iter().enumerate() {
            node_ref[ff.index()] = SlotRef::Slot((num_inputs + k) as u32);
        }
        for (id, node) in netlist.nodes() {
            if let NodeKind::Const(v) = node.kind() {
                node_ref[id.index()] = SlotRef::Const(v);
            }
        }
        let mut pinned = vec![false; netlist.num_nodes()];
        if !consts.is_empty() {
            assert!(
                consts.len() >= netlist.num_nodes(),
                "const seed slice shorter than the node count"
            );
            for (id, node) in netlist.nodes() {
                if node.kind().gate_kind().is_some() {
                    if let Some(v) = consts[id.index()].to_bool() {
                        node_ref[id.index()] = SlotRef::Const(v);
                        pinned[id.index()] = true;
                    }
                }
            }
        }

        let mut tape = Tape {
            num_slots: num_inputs + num_ffs,
            num_inputs,
            num_ffs,
            opcode: Vec::new(),
            lhs: Vec::new(),
            rhs: Vec::new(),
            node_ref: Vec::new(),
            ff_d: Vec::new(),
        };

        let mut slots: Vec<u32> = Vec::with_capacity(8);
        for &g in netlist.topo_gates() {
            if pinned[g.index()] {
                continue;
            }
            let node = netlist.node(g);
            let kind = node.kind().gate_kind().expect("topo holds gates");
            let fanins = node.fanins();
            let r = match kind {
                GateKind::Buf => node_ref[fanins[0].index()],
                GateKind::Not => match node_ref[fanins[0].index()] {
                    SlotRef::Const(v) => SlotRef::Const(!v),
                    SlotRef::Slot(s) => tape.emit_not(s),
                },
                GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                    let ctrl = kind.controlling_value().expect("AND/OR family");
                    let mut controlled = false;
                    slots.clear();
                    for &f in fanins {
                        match node_ref[f.index()] {
                            SlotRef::Const(v) if v == ctrl => {
                                controlled = true;
                                break;
                            }
                            // A non-controlling constant is the identity
                            // of the base function — drop it.
                            SlotRef::Const(_) => {}
                            SlotRef::Slot(s) => slots.push(s),
                        }
                    }
                    if controlled {
                        SlotRef::Const(kind.controlled_output().expect("AND/OR family"))
                    } else if slots.is_empty() {
                        // All inputs were the identity constant.
                        SlotRef::Const(!ctrl ^ kind.output_inversion())
                    } else {
                        let (base, inv) = match kind {
                            GateKind::And | GateKind::Nand => (Op::And, Op::Nand),
                            _ => (Op::Or, Op::Nor),
                        };
                        tape.emit_or_alias(base, inv, kind.output_inversion(), &slots)
                    }
                }
                GateKind::Xor | GateKind::Xnor => {
                    // Constant inputs fold into the output parity.
                    let mut parity = kind.output_inversion();
                    slots.clear();
                    for &f in fanins {
                        match node_ref[f.index()] {
                            SlotRef::Const(v) => parity ^= v,
                            SlotRef::Slot(s) => slots.push(s),
                        }
                    }
                    if slots.is_empty() {
                        SlotRef::Const(parity)
                    } else {
                        tape.emit_or_alias(Op::Xor, Op::Xnor, parity, &slots)
                    }
                }
            };
            node_ref[g.index()] = r;
        }

        tape.ff_d = (0..num_ffs)
            .map(|k| node_ref[netlist.ff_d_input(k).index()])
            .collect();
        tape.node_ref = node_ref;
        tape
    }

    /// Emits the binary chain for an n-ary gate, or — for a single
    /// surviving fanin — aliases (non-inverting) or emits a NOT
    /// (inverting) instead, so degenerate gates cost nothing extra at
    /// runtime. An n-input gate becomes `n - 1` instructions of `base`
    /// with the output inversion folded into a final `inv` link.
    fn emit_or_alias(&mut self, base: Op, inv: Op, inverting: bool, slots: &[u32]) -> SlotRef {
        if slots.len() == 1 {
            return if inverting {
                self.emit_not(slots[0])
            } else {
                SlotRef::Slot(slots[0])
            };
        }
        let mut acc = slots[0];
        for &s in &slots[1..slots.len() - 1] {
            let SlotRef::Slot(next) = self.emit2(base, acc, s) else {
                unreachable!("emit2 always yields a slot");
            };
            acc = next;
        }
        let last = slots[slots.len() - 1];
        self.emit2(if inverting { inv } else { base }, acc, last)
    }

    /// `NOT(a)` as the binary instruction `NAND(a, a)`.
    fn emit_not(&mut self, a: u32) -> SlotRef {
        self.emit2(Op::Nand, a, a)
    }

    fn emit2(&mut self, op: Op, a: u32, b: u32) -> SlotRef {
        let out = u32::try_from(self.num_slots).expect("slot count exceeds u32");
        self.num_slots += 1;
        self.opcode.push(op);
        self.lhs.push(a);
        self.rhs.push(b);
        SlotRef::Slot(out)
    }

    /// Number of runtime value slots (inputs + FF states + instruction
    /// outputs).
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Number of emitted binary instructions — the per-pass work. An
    /// n-input gate contributes at most `n - 1`; folding and aliasing
    /// only shrink the total relative to that bound.
    #[inline]
    pub fn num_ops(&self) -> usize {
        self.opcode.len()
    }

    /// Total fanin references across all instructions (the tape's
    /// memory-traffic proxy) — two per binary instruction.
    #[inline]
    pub fn num_fanin_refs(&self) -> usize {
        2 * self.opcode.len()
    }

    /// Number of primary inputs of the compiled netlist.
    #[inline]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of flip-flops of the compiled netlist.
    #[inline]
    pub fn num_ffs(&self) -> usize {
        self.num_ffs
    }

    /// Where the value of original node `id` lives. Aliased (buffer) and
    /// folded (constant) nodes resolve here without occupying a slot.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to the compiled netlist.
    #[inline]
    pub fn slot_of(&self, id: NodeId) -> SlotRef {
        self.node_ref[id.index()]
    }

    /// Where FF `ff`'s D-input value lives after an eval pass.
    ///
    /// # Panics
    ///
    /// Panics if `ff` is out of range.
    #[inline]
    pub fn ff_d(&self, ff: usize) -> SlotRef {
        self.ff_d[ff]
    }

    /// The runtime slot of primary input `pi`.
    #[inline]
    pub fn pi_slot(&self, pi: usize) -> usize {
        debug_assert!(pi < self.num_inputs);
        pi
    }

    /// The runtime slot holding FF `ff`'s state.
    #[inline]
    pub fn ff_slot(&self, ff: usize) -> usize {
        debug_assert!(ff < self.num_ffs);
        self.num_inputs + ff
    }
}

/// Wide-word evaluator over a compiled [`Tape`].
///
/// Each slot holds `[u64; W]`: bit `l` of word `w` is one independent
/// simulation lane, `64 × W` lanes per pass. `W = 1` is the drop-in
/// equivalent of [`ParallelSim`](crate::ParallelSim); `W = 4` (256
/// lanes) is the pipeline default.
///
/// The state/eval/clock protocol mirrors `ParallelSim`: set inputs and
/// state, [`eval`](Self::eval), read [`value`](Self::value) /
/// [`next_state`](Self::next_state), then [`clock`](Self::clock) to
/// latch.
#[derive(Debug, Clone)]
pub struct TapeSim<'t, const W: usize> {
    tape: &'t Tape,
    slots: Vec<[u64; W]>,
    /// Clock-latch scratch: D values are read out completely before any
    /// state slot is overwritten, because a D ref may alias another
    /// FF's state slot (e.g. `Q2.D = BUF(Q1)` chains to Q1's slot).
    latch: Vec<[u64; W]>,
}

impl<'t, const W: usize> TapeSim<'t, W> {
    /// Creates an evaluator with all inputs and state zero.
    pub fn new(tape: &'t Tape) -> Self {
        TapeSim {
            tape,
            slots: vec![[0; W]; tape.num_slots()],
            latch: vec![[0; W]; tape.num_ffs()],
        }
    }

    /// The compiled tape this evaluator runs.
    #[inline]
    pub fn tape(&self) -> &'t Tape {
        self.tape
    }

    /// Sets the `64 × W` lanes of primary input `pi`.
    ///
    /// # Panics
    ///
    /// Panics if `pi` is out of range.
    #[inline]
    pub fn set_input(&mut self, pi: usize, words: [u64; W]) {
        assert!(pi < self.tape.num_inputs, "primary input out of range");
        self.slots[self.tape.pi_slot(pi)] = words;
    }

    /// Sets the `64 × W` lanes of FF `ff`'s state.
    ///
    /// # Panics
    ///
    /// Panics if `ff` is out of range.
    #[inline]
    pub fn set_state(&mut self, ff: usize, words: [u64; W]) {
        assert!(ff < self.tape.num_ffs, "flip-flop out of range");
        self.slots[self.tape.ff_slot(ff)] = words;
    }

    /// Current state of FF `ff`.
    ///
    /// # Panics
    ///
    /// Panics if `ff` is out of range.
    #[inline]
    pub fn state(&self, ff: usize) -> [u64; W] {
        assert!(ff < self.tape.num_ffs, "flip-flop out of range");
        self.slots[self.tape.ff_slot(ff)]
    }

    /// Runs the instruction tape: one forward sweep evaluates the
    /// combinational logic for the current inputs and state.
    ///
    /// Each binary instruction is a load–load–op–store over `[u64; W]`;
    /// the output slot is the instruction index offset past the
    /// input/state slots, so the loop carries no per-instruction
    /// metadata beyond two operand indices and an opcode.
    pub fn eval(&mut self) {
        let t = self.tape;
        let base = t.num_inputs + t.num_ffs;
        for (out, ((&op, &a), &b)) in
            (base..).zip(t.opcode.iter().zip(t.lhs.iter()).zip(t.rhs.iter()))
        {
            let va = self.slots[a as usize];
            let vb = self.slots[b as usize];
            let mut v = [0u64; W];
            match op {
                Op::And => {
                    for l in 0..W {
                        v[l] = va[l] & vb[l];
                    }
                }
                Op::Nand => {
                    for l in 0..W {
                        v[l] = !(va[l] & vb[l]);
                    }
                }
                Op::Or => {
                    for l in 0..W {
                        v[l] = va[l] | vb[l];
                    }
                }
                Op::Nor => {
                    for l in 0..W {
                        v[l] = !(va[l] | vb[l]);
                    }
                }
                Op::Xor => {
                    for l in 0..W {
                        v[l] = va[l] ^ vb[l];
                    }
                }
                Op::Xnor => {
                    for l in 0..W {
                        v[l] = !(va[l] ^ vb[l]);
                    }
                }
            }
            self.slots[out] = v;
        }
    }

    /// Resolves a [`SlotRef`] against the current slot values.
    #[inline]
    fn resolve(&self, r: SlotRef) -> [u64; W] {
        match r {
            SlotRef::Slot(s) => self.slots[s as usize],
            SlotRef::Const(true) => [u64::MAX; W],
            SlotRef::Const(false) => [0; W],
        }
    }

    /// The wide value of original node `id` from the most recent
    /// [`eval`](Self::eval). Works for every node of the compiled
    /// netlist, including folded constants and aliased buffers.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to the compiled netlist.
    #[inline]
    pub fn value(&self, id: NodeId) -> [u64; W] {
        self.resolve(self.tape.slot_of(id))
    }

    /// FF `ff`'s D-input value from the most recent `eval` — the state
    /// it will hold after the next [`clock`](Self::clock).
    ///
    /// # Panics
    ///
    /// Panics if `ff` is out of range.
    #[inline]
    pub fn next_state(&self, ff: usize) -> [u64; W] {
        self.resolve(self.tape.ff_d(ff))
    }

    /// Latches every FF's D-input value (positive clock edge).
    pub fn clock(&mut self) {
        for ff in 0..self.tape.num_ffs {
            self.latch[ff] = self.resolve(self.tape.ff_d[ff]);
        }
        for ff in 0..self.tape.num_ffs {
            self.slots[self.tape.ff_slot(ff)] = self.latch[ff];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParallelSim;
    use mcp_netlist::NetlistBuilder;

    fn gray2() -> Netlist {
        let mut b = NetlistBuilder::new("gray2");
        let f3 = b.dff("F3");
        let f4 = b.dff("F4");
        let nf3 = b.gate("NF3", GateKind::Not, [f3]).unwrap();
        b.set_dff_input(f3, f4).unwrap();
        b.set_dff_input(f4, nf3).unwrap();
        b.mark_output(f3);
        b.finish().unwrap()
    }

    #[test]
    fn gray_counter_matches_parallel_sim() {
        let nl = gray2();
        let tape = Tape::compile(&nl);
        let mut sim = TapeSim::<2>::new(&tape);
        let mut reference = ParallelSim::new(&nl);
        sim.set_state(0, [0b10, 0b01]);
        sim.set_state(1, [0b10, 0b11]);
        reference.set_state(0, 0b10);
        reference.set_state(1, 0b10);
        sim.eval();
        reference.eval();
        // Word 0 tracks the reference lane-for-lane.
        assert_eq!(sim.next_state(0)[0], reference.next_state(0));
        assert_eq!(sim.next_state(1)[0], reference.next_state(1));
        sim.clock();
        reference.clock();
        assert_eq!(sim.state(0)[0], reference.state(0));
        assert_eq!(sim.state(1)[0], reference.state(1));
        // Words are independent: word 1 evolved its own state.
        assert_eq!(sim.state(0)[1], 0b11);
        assert_eq!(sim.state(1)[1], !0b01);
    }

    #[test]
    fn constants_fold_away_entirely() {
        let mut b = NetlistBuilder::new("c");
        let one = b.constant("ONE", true);
        let zero = b.constant("ZERO", false);
        let input = b.input("IN");
        // a = AND(ONE, ZERO) -> const 0;  o = OR(ONE, ZERO) -> const 1
        let a = b.gate("A", GateKind::And, [one, zero]).unwrap();
        let o = b.gate("O", GateKind::Or, [one, zero]).unwrap();
        // g = AND(IN, ONE) -> alias of IN;  n = NOR(IN, ZERO) -> NOT(IN)
        let g = b.gate("G", GateKind::And, [input, one]).unwrap();
        let n = b.gate("N", GateKind::Nor, [input, zero]).unwrap();
        // x = XOR(IN, ONE) -> NOT(IN);  y = XNOR(ONE, ZERO) -> const 0
        let x = b.gate("X", GateKind::Xor, [input, one]).unwrap();
        let y = b.gate("Y", GateKind::Xnor, [one, zero]).unwrap();
        for id in [a, o, g, n, x, y] {
            b.mark_output(id);
        }
        let nl = b.finish().unwrap();
        let tape = Tape::compile(&nl);
        // Only the two NOTs survive as instructions.
        assert_eq!(tape.num_ops(), 2);
        assert_eq!(tape.slot_of(a), SlotRef::Const(false));
        assert_eq!(tape.slot_of(o), SlotRef::Const(true));
        assert_eq!(tape.slot_of(g), tape.slot_of(input));
        assert_eq!(tape.slot_of(y), SlotRef::Const(false));

        let mut sim = TapeSim::<1>::new(&tape);
        sim.set_input(0, [0b01]);
        sim.eval();
        assert_eq!(sim.value(a), [0]);
        assert_eq!(sim.value(o), [u64::MAX]);
        assert_eq!(sim.value(g), [0b01]);
        assert_eq!(sim.value(n), [!0b01]);
        assert_eq!(sim.value(x), [!0b01]);
        assert_eq!(sim.value(y), [0]);
    }

    #[test]
    fn buffer_chains_alias_to_the_source_slot() {
        let mut b = NetlistBuilder::new("bufs");
        let input = b.input("IN");
        let b1 = b.gate("B1", GateKind::Buf, [input]).unwrap();
        let b2 = b.gate("B2", GateKind::Buf, [b1]).unwrap();
        let b3 = b.gate("B3", GateKind::Buf, [b2]).unwrap();
        let ff = b.dff("FF");
        b.set_dff_input(ff, b3).unwrap();
        b.mark_output(ff);
        let nl = b.finish().unwrap();
        let tape = Tape::compile(&nl);
        assert_eq!(tape.num_ops(), 0, "buffer chains emit no instructions");
        assert_eq!(tape.slot_of(b3), tape.slot_of(input));
        assert_eq!(tape.ff_d(0), tape.slot_of(input));

        let mut sim = TapeSim::<1>::new(&tape);
        sim.set_input(0, [0xABCD]);
        sim.eval();
        assert_eq!(sim.next_state(0), [0xABCD]);
        sim.clock();
        assert_eq!(sim.state(0), [0xABCD]);
    }

    #[test]
    fn constant_fed_ff_latches_the_constant() {
        let mut b = NetlistBuilder::new("constff");
        let one = b.constant("ONE", true);
        let ff = b.dff("FF");
        b.set_dff_input(ff, one).unwrap();
        b.mark_output(ff);
        let nl = b.finish().unwrap();
        let tape = Tape::compile(&nl);
        assert_eq!(tape.ff_d(0), SlotRef::Const(true));
        let mut sim = TapeSim::<2>::new(&tape);
        sim.set_state(0, [0, 0]);
        sim.eval();
        assert_eq!(sim.next_state(0), [u64::MAX; 2]);
        sim.clock();
        assert_eq!(sim.state(0), [u64::MAX; 2]);
    }

    #[test]
    fn clock_reads_all_d_values_before_latching() {
        // FF shift pair where each D aliases the *other* FF's state slot:
        // a naive in-place latch would corrupt the second read.
        let mut b = NetlistBuilder::new("swap");
        let f0 = b.dff("F0");
        let f1 = b.dff("F1");
        let b0 = b.gate("B0", GateKind::Buf, [f1]).unwrap();
        let b1 = b.gate("B1", GateKind::Buf, [f0]).unwrap();
        b.set_dff_input(f0, b0).unwrap();
        b.set_dff_input(f1, b1).unwrap();
        b.mark_output(f0);
        let nl = b.finish().unwrap();
        let tape = Tape::compile(&nl);
        assert_eq!(tape.num_ops(), 0);
        let mut sim = TapeSim::<1>::new(&tape);
        sim.set_state(0, [0xAAAA]);
        sim.set_state(1, [0x5555]);
        sim.eval();
        sim.clock();
        assert_eq!(sim.state(0), [0x5555]);
        assert_eq!(sim.state(1), [0xAAAA]);
    }

    #[test]
    fn cascaded_folding_reaches_downstream_gates() {
        // NOT(AND(ONE, ZERO)) = NOT(0) = 1, then AND(IN, that) aliases IN.
        let mut b = NetlistBuilder::new("cascade");
        let one = b.constant("ONE", true);
        let zero = b.constant("ZERO", false);
        let input = b.input("IN");
        let a = b.gate("A", GateKind::And, [one, zero]).unwrap();
        let n = b.gate("N", GateKind::Not, [a]).unwrap();
        let g = b.gate("G", GateKind::And, [input, n]).unwrap();
        b.mark_output(g);
        let nl = b.finish().unwrap();
        let tape = Tape::compile(&nl);
        assert_eq!(tape.num_ops(), 0);
        assert_eq!(tape.slot_of(n), SlotRef::Const(true));
        assert_eq!(tape.slot_of(g), tape.slot_of(input));
    }

    #[test]
    fn seeded_compile_matches_the_cascade_folder() {
        // The tape's syntactic cascade folder and a forward ternary
        // lattice over the same netlist are both correlation-blind
        // constant propagation from CONST drivers with X at every PI
        // and FF — so seeding the compiler with exactly the constants
        // its own folder would derive must reproduce the instruction
        // stream bit for bit. (A seed the folder *can't* derive would
        // shrink the tape; the pipeline's seed never is, and this test
        // keeps the equivalence enforced rather than assumed.)
        let mut b = NetlistBuilder::new("seeded");
        let one = b.constant("ONE", true);
        let zero = b.constant("ZERO", false);
        let input = b.input("IN");
        let ff = b.dff("FF");
        let dead = b.gate("DEAD", GateKind::And, [input, zero]).unwrap();
        let n = b.gate("N", GateKind::Not, [dead]).unwrap();
        let live = b.gate("LIVE", GateKind::Xor, [input, ff]).unwrap();
        let mix = b.gate("MIX", GateKind::Or, [live, dead]).unwrap();
        let keep = b.gate("KEEP", GateKind::And, [mix, n, one]).unwrap();
        b.set_dff_input(ff, keep).unwrap();
        b.mark_output(keep);
        let nl = b.finish().unwrap();

        let plain = Tape::compile(&nl);
        // Recover the folder's own constant set through `slot_of`, feed
        // it back as the seed.
        let consts: Vec<V3> = (0..nl.num_nodes())
            .map(|i| match plain.slot_of(NodeId::from_index(i)) {
                SlotRef::Const(v) => V3::from(v),
                SlotRef::Slot(_) => V3::X,
            })
            .collect();
        let seeded = Tape::compile_with_consts(&nl, &consts);
        assert_eq!(seeded.num_ops(), plain.num_ops());
        assert_eq!(seeded.opcode, plain.opcode);
        assert_eq!(seeded.lhs, plain.lhs);
        assert_eq!(seeded.rhs, plain.rhs);
        assert_eq!(seeded.node_ref, plain.node_ref);
        assert_eq!(seeded.ff_d, plain.ff_d);

        // An empty seed is the plain compile.
        let unseeded = Tape::compile_with_consts(&nl, &[]);
        assert_eq!(unseeded.num_ops(), plain.num_ops());
        assert_eq!(unseeded.node_ref, plain.node_ref);
    }

    #[test]
    fn wide_words_carry_independent_lanes() {
        let nl = gray2();
        let tape = Tape::compile(&nl);
        let mut w4 = TapeSim::<4>::new(&tape);
        let mut w1 = TapeSim::<1>::new(&tape);
        let states = [[1u64, 2, 3, 4], [5u64, 6, 7, 8]];
        w4.set_state(0, states[0]);
        w4.set_state(1, states[1]);
        w4.eval();
        for (word, (&s0, &s1)) in states[0].iter().zip(states[1].iter()).enumerate() {
            w1.set_state(0, [s0]);
            w1.set_state(1, [s1]);
            w1.eval();
            assert_eq!(w4.next_state(0)[word], w1.next_state(0)[0]);
            assert_eq!(w4.next_state(1)[word], w1.next_state(1)[0]);
        }
    }
}
