//! Differential property tests for the compiled tape kernel.
//!
//! Three oracles pin the kernel down from independent directions:
//!
//! * [`ParallelSim`] — the graph-walking 64-lane simulator is the
//!   per-node value reference: every netlist node must carry the same
//!   word in both models, before and after clocking.
//! * [`mc_filter`] with `tape: false` — the prefilter reference path.
//!   The tape path must reproduce the **entire** [`FilterOutcome`]
//!   (survivor set, drop order, witness words, toggle counts) at every
//!   supported lane width, not just statistically similar results.
//! * [`EventSim`] — the three-valued event-driven simulator evaluates
//!   the netlist *without* any compile-time folding, so agreement on
//!   netlists dense with constants and buffer chains shows the folding
//!   rules preserve semantics.
//!
//! `mcp_gen::random_netlist` never emits `Const` nodes or long buffer
//! chains, so a local generator builds folding-heavy netlists here.

use mcp_gen::random::{random_netlist, RandomCircuitConfig};
use mcp_logic::{GateKind, V3};
use mcp_netlist::{Netlist, NetlistBuilder, NodeId};
use mcp_sim::{mc_filter, EventSim, FilterConfig, ParallelSim, Tape, TapeSim};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn cfg_strategy() -> impl Strategy<Value = (u64, RandomCircuitConfig)> {
    (0u64..100_000, 1usize..6, 0usize..4, 1usize..40, 1usize..5).prop_map(
        |(seed, ffs, pis, gates, max_arity)| {
            (
                seed,
                RandomCircuitConfig {
                    ffs,
                    pis,
                    gates,
                    max_arity,
                },
            )
        },
    )
}

/// Random netlist biased toward what the tape compiler folds: constant
/// nodes feed the gate pool, and `Buf`/`Not` are drawn twice as often as
/// in [`random_netlist`] so alias chains and inverter stacking appear.
fn folding_netlist(seed: u64, cfg: &RandomCircuitConfig) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetlistBuilder::new(format!("fold{seed}"));
    let mut pool: Vec<NodeId> = (0..cfg.pis).map(|i| b.input(format!("I{i}"))).collect();
    let ffs: Vec<NodeId> = (0..cfg.ffs).map(|i| b.dff(format!("F{i}"))).collect();
    pool.extend(&ffs);
    pool.push(b.constant("c0", false));
    pool.push(b.constant("c1", true));

    let kinds = [
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Not,
        GateKind::Buf,
        GateKind::Buf,
    ];
    for _ in 0..cfg.gates {
        let kind = kinds[rng.random_range(0..kinds.len())];
        let arity = kind
            .fixed_arity()
            .unwrap_or_else(|| rng.random_range(1..=cfg.max_arity));
        let ins: Vec<NodeId> = (0..arity)
            .map(|_| pool[rng.random_range(0..pool.len())])
            .collect();
        let g = b.gate_auto(kind, ins).expect("valid arity");
        pool.push(g);
    }
    for &ff in &ffs {
        let d = pool[rng.random_range(0..pool.len())];
        b.set_dff_input(ff, d).expect("valid dff");
    }
    b.mark_output(*pool.last().expect("non-empty pool"));
    b.finish().expect("folding circuit is well-formed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The prefilter's outcome is byte-identical between the reference
    /// path and the tape kernel at every supported lane width. Small
    /// `idle_words` keeps runs short while still crossing several
    /// batch boundaries at the widest width.
    #[test]
    fn tape_filter_matches_reference_at_every_lane_width(
        (seed, cfg) in cfg_strategy(),
        filter_seed in any::<u64>(),
    ) {
        let nl = random_netlist(seed, &cfg);
        let pairs = nl.connected_ff_pairs();
        let reference_cfg = FilterConfig {
            seed: filter_seed,
            idle_words: 6,
            max_words: 512,
            tape: false,
            lanes: 64,
            kernel: mcp_sim::SimKernel::Tape,
        };
        let reference = mc_filter(&nl, &pairs, &reference_cfg);
        for lanes in [64u32, 256, 512] {
            let tape_cfg = FilterConfig {
                tape: true,
                lanes,
                ..reference_cfg
            };
            let got = mc_filter(&nl, &pairs, &tape_cfg);
            prop_assert_eq!(
                &got, &reference,
                "outcome diverged at {} lanes (netlist seed {})", lanes, seed
            );
        }
    }

    /// Per-node values: a 1-word `TapeSim` tracks `ParallelSim` exactly on
    /// folding-heavy netlists, across evaluation and clocking.
    #[test]
    fn tape_values_match_parallel_sim_per_node(
        (seed, cfg) in cfg_strategy(),
        stimulus in any::<u64>(),
    ) {
        let nl = folding_netlist(seed, &cfg);
        let tape = Tape::compile(&nl);
        let mut tsim = TapeSim::<1>::new(&tape);
        let mut psim = ParallelSim::new(&nl);

        let mut rng = StdRng::seed_from_u64(stimulus);
        for ff in 0..nl.num_ffs() {
            let w: u64 = rng.random();
            tsim.set_state(ff, [w]);
            psim.set_state(ff, w);
        }
        for cycle in 0..3 {
            for pi in 0..nl.num_inputs() {
                let w: u64 = rng.random();
                tsim.set_input(pi, [w]);
                psim.set_input(pi, w);
            }
            tsim.eval();
            psim.eval();
            for (id, _) in nl.nodes() {
                prop_assert_eq!(
                    tsim.value(id)[0],
                    psim.value(id),
                    "node {:?} diverged in cycle {} (netlist seed {})", id, cycle, seed
                );
            }
            for ff in 0..nl.num_ffs() {
                prop_assert_eq!(tsim.next_state(ff)[0], psim.next_state(ff));
            }
            tsim.clock();
            psim.clock();
            for ff in 0..nl.num_ffs() {
                prop_assert_eq!(tsim.state(ff)[0], psim.state(ff));
            }
        }
    }

    /// Const folding preserves semantics: the tape agrees with the
    /// three-valued event simulator (which performs no folding at all) on
    /// every node of constant-dense netlists, and folding never *adds*
    /// instructions relative to the gate count.
    #[test]
    fn const_folding_matches_event_sim(
        (seed, cfg) in cfg_strategy(),
        stimulus in any::<u64>(),
    ) {
        let nl = folding_netlist(seed, &cfg);
        let tape = Tape::compile(&nl);
        // An n-input gate decomposes into at most n-1 binary
        // instructions (1 for NOT, 0 for BUF); folding only shrinks it.
        let bound: usize = nl
            .nodes()
            .filter_map(|(_, n)| {
                n.kind().gate_kind().map(|k| match k {
                    GateKind::Buf => 0,
                    GateKind::Not => 1,
                    _ => n.fanins().len().saturating_sub(1).max(1),
                })
            })
            .sum();
        prop_assert!(
            tape.num_ops() <= bound,
            "folding must not add instructions: {} ops for a bound of {}",
            tape.num_ops(),
            bound
        );

        let mut tsim = TapeSim::<1>::new(&tape);
        let mut esim = EventSim::new(&nl);
        let mut bits = stimulus;
        let mut next_bit = || {
            bits = bits
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            bits >> 63 == 1
        };
        for ff in 0..nl.num_ffs() {
            let v = next_bit();
            tsim.set_state(ff, [if v { u64::MAX } else { 0 }]);
            esim.set_state(ff, V3::from(v));
        }
        for _ in 0..2 {
            for pi in 0..nl.num_inputs() {
                let v = next_bit();
                tsim.set_input(pi, [if v { u64::MAX } else { 0 }]);
                esim.set_input(pi, V3::from(v));
            }
            tsim.eval();
            esim.propagate();
            for (id, _) in nl.nodes() {
                let lane0 = tsim.value(id)[0] & 1 == 1;
                prop_assert_eq!(
                    V3::from(lane0),
                    esim.value(id),
                    "node {:?} diverged (netlist seed {})", id, seed
                );
            }
            tsim.clock();
            esim.clock();
        }
    }
}
