//! Differential property tests for the fused/jit kernel tiers.
//!
//! The tape kernel is already pinned against three independent oracles
//! in `tape_diff.rs`; this suite extends the ladder upward. Two angles:
//!
//! * **Whole-filter equality** — [`mc_filter`] must produce a
//!   byte-identical [`FilterOutcome`] on the jit, fused, tape and
//!   reference tiers at every supported lane width. This exercises the
//!   complete pipeline (lowering, native-code emission where the host
//!   supports it, the shared batch/replay loop) on random netlists.
//! * **Per-node lowering equality** — with dead-slot elimination off
//!   ([`FusedTape::lower_keep_all`]), every tape slot remains mapped,
//!   so each netlist node's value under [`FusedSim`] must match
//!   [`TapeSim`] exactly across evaluation and clocking. This isolates
//!   the lowering rules (NOT fusion, operand-polarity folding, alias
//!   links) from the batch loop and from the emitter.
//!
//! On non-x86-64 hosts the jit tier silently lands on the fused
//! interpreter; the whole-filter property still holds (and the jit legs
//! degenerate into a second fused run, which is fine: the contract is
//! outcome equality, not which tier executed).

use mcp_gen::random::{random_netlist, RandomCircuitConfig};
use mcp_logic::GateKind;
use mcp_netlist::{Netlist, NetlistBuilder, NodeId};
use mcp_sim::{mc_filter, FilterConfig, FusedSim, FusedTape, SimKernel, Tape, TapeSim};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn cfg_strategy() -> impl Strategy<Value = (u64, RandomCircuitConfig)> {
    (0u64..100_000, 1usize..6, 0usize..4, 1usize..40, 1usize..5).prop_map(
        |(seed, ffs, pis, gates, max_arity)| {
            (
                seed,
                RandomCircuitConfig {
                    ffs,
                    pis,
                    gates,
                    max_arity,
                },
            )
        },
    )
}

/// Random netlist biased toward what the lowering pass fuses: constant
/// nodes feed the gate pool, and `Buf`/`Not` are drawn twice as often
/// as in [`random_netlist`] so inverter chains and alias links appear.
fn folding_netlist(seed: u64, cfg: &RandomCircuitConfig) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetlistBuilder::new(format!("fold{seed}"));
    let mut pool: Vec<NodeId> = (0..cfg.pis).map(|i| b.input(format!("I{i}"))).collect();
    let ffs: Vec<NodeId> = (0..cfg.ffs).map(|i| b.dff(format!("F{i}"))).collect();
    pool.extend(&ffs);
    pool.push(b.constant("c0", false));
    pool.push(b.constant("c1", true));

    let kinds = [
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Not,
        GateKind::Buf,
        GateKind::Buf,
    ];
    for _ in 0..cfg.gates {
        let kind = kinds[rng.random_range(0..kinds.len())];
        let arity = kind
            .fixed_arity()
            .unwrap_or_else(|| rng.random_range(1..=cfg.max_arity));
        let ins: Vec<NodeId> = (0..arity)
            .map(|_| pool[rng.random_range(0..pool.len())])
            .collect();
        let g = b.gate_auto(kind, ins).expect("valid arity");
        pool.push(g);
    }
    for &ff in &ffs {
        let d = pool[rng.random_range(0..pool.len())];
        b.set_dff_input(ff, d).expect("valid dff");
    }
    b.mark_output(*pool.last().expect("non-empty pool"));
    b.finish().expect("folding circuit is well-formed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The prefilter's outcome is byte-identical across the whole kernel
    /// ladder — jit, fused, tape — against the reference path, at every
    /// supported lane width. Small `idle_words` keeps runs short while
    /// still crossing several batch boundaries at the widest width.
    #[test]
    fn every_kernel_tier_matches_reference_at_every_lane_width(
        (seed, cfg) in cfg_strategy(),
        filter_seed in any::<u64>(),
    ) {
        let nl = random_netlist(seed, &cfg);
        let pairs = nl.connected_ff_pairs();
        let reference_cfg = FilterConfig {
            seed: filter_seed,
            idle_words: 6,
            max_words: 512,
            tape: false,
            lanes: 64,
            kernel: SimKernel::Reference,
        };
        let reference = mc_filter(&nl, &pairs, &reference_cfg);
        for kernel in [SimKernel::Jit, SimKernel::Fused, SimKernel::Tape] {
            for lanes in [64u32, 256, 512] {
                let tier_cfg = FilterConfig {
                    tape: true,
                    lanes,
                    kernel,
                    ..reference_cfg
                };
                let got = mc_filter(&nl, &pairs, &tier_cfg);
                prop_assert_eq!(
                    &got, &reference,
                    "outcome diverged on {:?} at {} lanes (netlist seed {})",
                    kernel, lanes, seed
                );
            }
        }
    }

    /// Lowering in isolation: with dead-slot elimination off, every tape
    /// slot maps to a fused ref, and a 1-word `FusedSim` tracks `TapeSim`
    /// on every netlist node across evaluation and clocking — so the
    /// fusion/polarity rules are semantics-preserving per node, not just
    /// per filter outcome.
    #[test]
    fn keep_all_lowering_matches_tape_sim_per_node(
        (seed, cfg) in cfg_strategy(),
        stimulus in any::<u64>(),
    ) {
        let nl = folding_netlist(seed, &cfg);
        let tape = Tape::compile(&nl);
        let fused = FusedTape::lower_keep_all(&tape);
        let mut tsim = TapeSim::<1>::new(&tape);
        let mut fsim = FusedSim::<1>::new(&fused);

        let mut rng = StdRng::seed_from_u64(stimulus);
        for ff in 0..nl.num_ffs() {
            let w: u64 = rng.random();
            tsim.set_state(ff, [w]);
            fsim.set_state(ff, [w]);
        }
        for cycle in 0..3 {
            for pi in 0..nl.num_inputs() {
                let w: u64 = rng.random();
                tsim.set_input(pi, [w]);
                fsim.set_input(pi, [w]);
            }
            tsim.eval();
            fsim.eval();
            for (id, _) in nl.nodes() {
                let fref = fused.tape_ref(tape.slot_of(id));
                prop_assert!(
                    fref.is_some(),
                    "keep-all lowering dropped node {:?} (netlist seed {})", id, seed
                );
                prop_assert_eq!(
                    fsim.resolve(fref.expect("checked above"))[0],
                    tsim.value(id)[0],
                    "node {:?} diverged in cycle {} (netlist seed {})", id, cycle, seed
                );
            }
            for ff in 0..nl.num_ffs() {
                prop_assert_eq!(fsim.next_state(ff)[0], tsim.next_state(ff)[0]);
            }
            tsim.clock();
            fsim.clock();
            for ff in 0..nl.num_ffs() {
                prop_assert_eq!(fsim.state(ff)[0], tsim.state(ff)[0]);
            }
        }
    }
}
