//! Property-based tests over random netlists.
//!
//! The central property is the **expansion/simulation equivalence**: the
//! time-frame expansion evaluated combinationally must agree, at every
//! node and every frame, with the sequential simulator stepped over the
//! same cycles. This is what licenses using one `Expanded` model for all
//! three decision engines.

use mcp_gen::random::{random_netlist, RandomCircuitConfig};
use mcp_logic::V3;
use mcp_netlist::{bench, Expanded, XId};
use mcp_sim::ParallelSim;
use proptest::prelude::*;

fn cfg_strategy() -> impl Strategy<Value = (u64, RandomCircuitConfig)> {
    (0u64..100_000, 1usize..6, 0usize..4, 1usize..40, 1usize..5).prop_map(
        |(seed, ffs, pis, gates, max_arity)| {
            (
                seed,
                RandomCircuitConfig {
                    ffs,
                    pis,
                    gates,
                    max_arity,
                },
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn expansion_agrees_with_sequential_simulation(
        (seed, cfg) in cfg_strategy(),
        frames in 1u32..4,
        stimulus in any::<u64>(),
    ) {
        let nl = random_netlist(seed, &cfg);
        let x = Expanded::build(&nl, frames);

        // Drive both models with the same pseudo-random bits derived from
        // `stimulus`.
        let mut bits = stimulus;
        let mut next_bit = || {
            bits = bits.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            bits >> 63 == 1
        };

        let mut sim = ParallelSim::new(&nl);
        let mut assigns: Vec<(XId, V3)> = Vec::new();
        let mut state = Vec::new();
        for ff in 0..nl.num_ffs() {
            let v = next_bit();
            state.push(v);
            sim.set_state(ff, if v { u64::MAX } else { 0 });
            assigns.push((x.ff_at(ff, 0), V3::from(v)));
        }
        let mut pi_frames: Vec<Vec<bool>> = Vec::new();
        for f in 0..frames {
            let mut row = Vec::new();
            for pi in 0..nl.num_inputs() {
                let v = next_bit();
                row.push(v);
                assigns.push((x.pi_at(pi, f), V3::from(v)));
            }
            pi_frames.push(row);
        }

        let vals = x.eval_v3(&assigns);

        for f in 0..frames {
            for (pi, &v) in pi_frames[f as usize].iter().enumerate() {
                sim.set_input(pi, if v { u64::MAX } else { 0 });
            }
            sim.eval();
            // Every node's frame-f value matches lane 0 of the simulator.
            for (id, _) in nl.nodes() {
                let xid = x.value_of(f, id);
                let expect = sim.value(id) & 1 == 1;
                prop_assert_eq!(
                    vals[xid.index()],
                    V3::from(expect),
                    "node {} frame {}",
                    nl.node(id).name(),
                    f
                );
            }
            // FF values at time f+1 match the post-clock state.
            for ff in 0..nl.num_ffs() {
                let expect = sim.next_state(ff) & 1 == 1;
                prop_assert_eq!(
                    vals[x.ff_at(ff, f + 1).index()],
                    V3::from(expect),
                    "ff {} time {}",
                    ff,
                    f + 1
                );
            }
            sim.clock();
        }
    }

    #[test]
    fn bench_round_trip_preserves_everything(
        (seed, cfg) in cfg_strategy(),
    ) {
        let nl = random_netlist(seed, &cfg);
        let text = bench::to_bench(&nl);
        let back = bench::parse(nl.name(), &text).expect("round trip parses");
        prop_assert_eq!(back.stats(), nl.stats());
        prop_assert_eq!(back.connected_ff_pairs(), nl.connected_ff_pairs());
        prop_assert_eq!(back.depth(), nl.depth());
    }

    #[test]
    fn levels_exceed_fanin_levels(
        (seed, cfg) in cfg_strategy(),
    ) {
        let nl = random_netlist(seed, &cfg);
        for &g in nl.topo_gates() {
            for &f in nl.node(g).fanins() {
                prop_assert!(nl.level(g) > nl.level(f));
            }
        }
    }

    #[test]
    fn fanouts_invert_fanins(
        (seed, cfg) in cfg_strategy(),
    ) {
        let nl = random_netlist(seed, &cfg);
        for (id, node) in nl.nodes() {
            for &f in node.fanins() {
                prop_assert!(nl.fanouts(f).contains(&id));
            }
            for &o in nl.fanouts(id) {
                prop_assert!(nl.node(o).fanins().contains(&id));
            }
        }
    }

    #[test]
    fn path_cone_consistent_with_connectivity(
        (seed, cfg) in cfg_strategy(),
    ) {
        let nl = random_netlist(seed, &cfg);
        let pairs = nl.connected_ff_pairs();
        for i in 0..nl.num_ffs() {
            for j in 0..nl.num_ffs() {
                let connected = pairs.contains(&(i, j));
                prop_assert_eq!(nl.ffs_connected(i, j), connected, "({}, {})", i, j);
                prop_assert_eq!(!nl.path_cone(i, j).is_empty(), connected);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser must never panic, whatever bytes it is fed — errors only.
    #[test]
    fn bench_parser_never_panics(src in "\\PC{0,200}") {
        let _ = bench::parse("fuzz", &src);
    }

    /// Structured-ish garbage: random statement soups built from plausible
    /// tokens exercise the statement machinery deeper than raw bytes.
    #[test]
    fn bench_parser_handles_statement_soup(
        stmts in proptest::collection::vec(
            prop_oneof![
                "[A-Za-z][A-Za-z0-9]{0,4}",
                "INPUT\\([A-Za-z][A-Za-z0-9]{0,3}\\)",
                "OUTPUT\\([A-Za-z][A-Za-z0-9]{0,3}\\)",
                "[A-Za-z][0-9]? = (AND|OR|NAND|NOR|XOR|NOT|BUFF|DFF|CONST)\\([A-Za-z0-9, ]{0,12}\\)",
                "# [ -~]{0,20}",
            ],
            0..12,
        )
    ) {
        let src = stmts.join("\n");
        match bench::parse("soup", &src) {
            Ok(nl) => {
                // Anything that parses must round-trip.
                let back = bench::parse("again", &bench::to_bench(&nl)).expect("round trip");
                prop_assert_eq!(back.stats(), nl.stats());
            }
            Err(e) => {
                // Errors carry a message and a plausible line number.
                prop_assert!(!e.message.is_empty());
            }
        }
    }
}

mod sweep_props {
    use super::*;
    use mcp_logic::GateKind;
    use mcp_netlist::{sweep, Netlist, NetlistBuilder, NodeId};

    /// A random circuit whose gate pool also contains constants and
    /// deliberate duplicates — the food the sweeper eats.
    fn random_with_consts(seed: u64, gates: usize) -> Netlist {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = NetlistBuilder::new(format!("sweepable{seed}"));
        let mut pool: Vec<NodeId> = (0..3).map(|i| b.input(format!("I{i}"))).collect();
        let ffs: Vec<NodeId> = (0..3).map(|i| b.dff(format!("F{i}"))).collect();
        pool.extend(&ffs);
        pool.push(b.constant("ONE", true));
        pool.push(b.constant("ZERO", false));
        let kinds = [
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Not,
            GateKind::Buf,
        ];
        for _ in 0..gates {
            let kind = kinds[rng.random_range(0..kinds.len())];
            let arity = kind.fixed_arity().unwrap_or(rng.random_range(1..=3));
            let ins: Vec<NodeId> = (0..arity)
                .map(|_| pool[rng.random_range(0..pool.len())])
                .collect();
            let g = b.gate_auto(kind, ins).expect("arity");
            pool.push(g);
        }
        for &ff in &ffs {
            let d = pool[rng.random_range(0..pool.len())];
            b.set_dff_input(ff, d).expect("dff");
        }
        b.mark_output(*pool.last().unwrap());
        b.finish().expect("well-formed")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The swept circuit is sequentially equivalent: same FF
        /// trajectories and same primary-output values over several random
        /// cycles, in all 64 lanes.
        #[test]
        fn sweep_preserves_sequential_behaviour(
            seed in 0u64..50_000,
            gates in 1usize..35,
            stim in any::<u64>(),
        ) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let original = random_with_consts(seed, gates);
            let (swept, stats) = sweep(&original);
            prop_assert!(stats.gates_after <= stats.gates_before);
            prop_assert_eq!(swept.num_ffs(), original.num_ffs());
            prop_assert_eq!(swept.num_inputs(), original.num_inputs());
            prop_assert_eq!(swept.outputs().len(), original.outputs().len());

            let mut rng = StdRng::seed_from_u64(stim);
            let mut sim_a = ParallelSim::new(&original);
            let mut sim_b = ParallelSim::new(&swept);
            for ff in 0..original.num_ffs() {
                let w: u64 = rng.random();
                sim_a.set_state(ff, w);
                sim_b.set_state(ff, w);
            }
            for _cycle in 0..4 {
                for pi in 0..original.num_inputs() {
                    let w: u64 = rng.random();
                    sim_a.set_input(pi, w);
                    sim_b.set_input(pi, w);
                }
                sim_a.eval();
                sim_b.eval();
                for (k, (&pa, &pb)) in original
                    .outputs()
                    .iter()
                    .zip(swept.outputs().iter())
                    .enumerate()
                {
                    prop_assert_eq!(sim_a.value(pa), sim_b.value(pb), "PO {}", k);
                }
                for ff in 0..original.num_ffs() {
                    prop_assert_eq!(
                        sim_a.next_state(ff),
                        sim_b.next_state(ff),
                        "FF {} next state",
                        ff
                    );
                }
                sim_a.clock();
                sim_b.clock();
            }
        }

        /// Sweeping a swept circuit changes nothing.
        #[test]
        fn sweep_is_a_fixpoint(seed in 0u64..50_000, gates in 1usize..35) {
            let original = random_with_consts(seed, gates);
            let (once, _) = sweep(&original);
            let (twice, stats) = sweep(&once);
            prop_assert_eq!(once.stats(), twice.stats());
            prop_assert_eq!(stats.folded_constant, 0);
            prop_assert_eq!(stats.merged_duplicate, 0);
        }
    }
}
