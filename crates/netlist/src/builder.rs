//! Netlist construction with validation.

use crate::model::{Netlist, Node, NodeId, NodeKind};
use mcp_logic::GateKind;
use std::collections::HashMap;
use std::fmt;

/// Error produced while building a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// Two nodes were created with the same name.
    DuplicateName(String),
    /// A gate was created with an input count its kind does not allow.
    BadArity {
        /// The offending gate's name.
        name: String,
        /// Its function.
        kind: GateKind,
        /// The number of fanins supplied.
        got: usize,
    },
    /// `finish` found a flip-flop whose D input was never connected.
    UnconnectedDff(String),
    /// `finish` found a combinational cycle (a cycle not broken by a DFF).
    CombinationalCycle {
        /// Name of one node on the cycle.
        on: String,
    },
    /// A node id from a different builder was used.
    ForeignNode,
    /// `set_dff_input` was called on a node that is not a DFF.
    NotADff(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::DuplicateName(n) => write!(f, "duplicate node name `{n}`"),
            BuildError::BadArity { name, kind, got } => {
                write!(f, "gate `{name}` of kind {kind} cannot take {got} inputs")
            }
            BuildError::UnconnectedDff(n) => {
                write!(f, "flip-flop `{n}` has no D input connected")
            }
            BuildError::CombinationalCycle { on } => {
                write!(f, "combinational cycle through node `{on}`")
            }
            BuildError::ForeignNode => write!(f, "node id does not belong to this builder"),
            BuildError::NotADff(n) => write!(f, "node `{n}` is not a flip-flop"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Incremental builder for [`Netlist`].
///
/// Nodes are created with [`input`](Self::input), [`dff`](Self::dff),
/// [`constant`](Self::constant) and [`gate`](Self::gate) (or the
/// convenience helpers). Flip-flop D inputs may be connected after the
/// driving logic exists via [`set_dff_input`](Self::set_dff_input), which
/// is what makes sequential loops expressible. [`finish`](Self::finish)
/// validates the whole circuit and computes the derived structures.
///
/// # Example
///
/// ```
/// use mcp_logic::GateKind;
/// use mcp_netlist::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new("counter-bit");
/// let en = b.input("EN");
/// let q = b.dff("Q");
/// let d = b.gate("D", GateKind::Xor, [q, en])?;
/// b.set_dff_input(q, d)?;
/// b.mark_output(q);
/// let netlist = b.finish()?;
/// assert_eq!(netlist.stats().gates, 1);
/// # Ok::<(), mcp_netlist::BuildError>(())
/// ```
#[derive(Debug)]
pub struct NetlistBuilder {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    dffs: Vec<NodeId>,
    name_index: HashMap<String, NodeId>,
    errors: Vec<BuildError>,
    auto_counter: u64,
}

impl NetlistBuilder {
    /// Creates an empty builder for a circuit with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            dffs: Vec::new(),
            name_index: HashMap::new(),
            errors: Vec::new(),
            auto_counter: 0,
        }
    }

    fn add_node(&mut self, name: String, kind: NodeKind, fanins: Vec<NodeId>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        if self.name_index.insert(name.clone(), id).is_some() {
            self.errors.push(BuildError::DuplicateName(name.clone()));
        }
        self.nodes.push(Node { name, kind, fanins });
        id
    }

    /// Generates a fresh unique name with the given prefix.
    pub fn fresh_name(&mut self, prefix: &str) -> String {
        loop {
            let candidate = format!("{prefix}{}", self.auto_counter);
            self.auto_counter += 1;
            if !self.name_index.contains_key(&candidate) {
                return candidate;
            }
        }
    }

    /// Adds a primary input.
    pub fn input(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.add_node(name.into(), NodeKind::Input, Vec::new());
        self.inputs.push(id);
        id
    }

    /// Adds a constant driver.
    pub fn constant(&mut self, name: impl Into<String>, value: bool) -> NodeId {
        self.add_node(name.into(), NodeKind::Const(value), Vec::new())
    }

    /// Adds a flip-flop with an as-yet-unconnected D input.
    ///
    /// Connect it later with [`set_dff_input`](Self::set_dff_input);
    /// [`finish`](Self::finish) reports FFs left unconnected.
    pub fn dff(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.add_node(name.into(), NodeKind::Dff, Vec::new());
        self.dffs.push(id);
        id
    }

    /// Adds a flip-flop whose D input is already known.
    pub fn dff_with_input(&mut self, name: impl Into<String>, d: NodeId) -> NodeId {
        let id = self.dff(name);
        self.nodes[id.index()].fanins = vec![d];
        id
    }

    /// Connects (or reconnects) a flip-flop's D input.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::NotADff`] if `ff` is not a flip-flop node and
    /// [`BuildError::ForeignNode`] if either id is out of range.
    pub fn set_dff_input(&mut self, ff: NodeId, d: NodeId) -> Result<(), BuildError> {
        if ff.index() >= self.nodes.len() || d.index() >= self.nodes.len() {
            return Err(BuildError::ForeignNode);
        }
        if !self.nodes[ff.index()].kind.is_dff() {
            return Err(BuildError::NotADff(self.nodes[ff.index()].name.clone()));
        }
        self.nodes[ff.index()].fanins = vec![d];
        Ok(())
    }

    /// Adds a combinational gate.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::BadArity`] when the fanin count is not allowed
    /// for `kind` (NOT/BUF take exactly one input, the n-ary gates at least
    /// one) and [`BuildError::ForeignNode`] when a fanin id is out of
    /// range.
    pub fn gate<I>(
        &mut self,
        name: impl Into<String>,
        kind: GateKind,
        fanins: I,
    ) -> Result<NodeId, BuildError>
    where
        I: IntoIterator<Item = NodeId>,
    {
        let name = name.into();
        let fanins: Vec<NodeId> = fanins.into_iter().collect();
        let ok = match kind.fixed_arity() {
            Some(n) => fanins.len() == n,
            None => !fanins.is_empty(),
        };
        if !ok {
            return Err(BuildError::BadArity {
                name,
                kind,
                got: fanins.len(),
            });
        }
        if fanins.iter().any(|f| f.index() >= self.nodes.len()) {
            return Err(BuildError::ForeignNode);
        }
        Ok(self.add_node(name, NodeKind::Gate(kind), fanins))
    }

    /// Adds a gate with a generated name (`prefix` + counter).
    ///
    /// # Errors
    ///
    /// Same as [`gate`](Self::gate).
    pub fn gate_auto<I>(&mut self, kind: GateKind, fanins: I) -> Result<NodeId, BuildError>
    where
        I: IntoIterator<Item = NodeId>,
    {
        let name = self.fresh_name("n");
        self.gate(name, kind, fanins)
    }

    /// Convenience: a NOT gate with a generated name.
    ///
    /// # Errors
    ///
    /// Same as [`gate`](Self::gate).
    pub fn not(&mut self, a: NodeId) -> Result<NodeId, BuildError> {
        self.gate_auto(GateKind::Not, [a])
    }

    /// Convenience: an AND gate with a generated name.
    ///
    /// # Errors
    ///
    /// Same as [`gate`](Self::gate).
    pub fn and<I: IntoIterator<Item = NodeId>>(&mut self, ins: I) -> Result<NodeId, BuildError> {
        self.gate_auto(GateKind::And, ins)
    }

    /// Convenience: an OR gate with a generated name.
    ///
    /// # Errors
    ///
    /// Same as [`gate`](Self::gate).
    pub fn or<I: IntoIterator<Item = NodeId>>(&mut self, ins: I) -> Result<NodeId, BuildError> {
        self.gate_auto(GateKind::Or, ins)
    }

    /// Convenience: a 2-to-1 multiplexer built from AND/OR/NOT gates, as a
    /// technology mapper would decompose it.
    ///
    /// Returns the output node of `sel ? when_one : when_zero`. Four gates
    /// named `<prefix>_SELB`, `<prefix>_A0`, `<prefix>_A1`, `<prefix>_OR`
    /// are created — the same shape as the paper's Fig.3 mapping.
    ///
    /// # Errors
    ///
    /// Same as [`gate`](Self::gate) (duplicate prefix names surface at
    /// [`finish`](Self::finish)).
    pub fn mux(
        &mut self,
        prefix: &str,
        sel: NodeId,
        when_zero: NodeId,
        when_one: NodeId,
    ) -> Result<NodeId, BuildError> {
        let selb = self.gate(format!("{prefix}_SELB"), GateKind::Not, [sel])?;
        let a0 = self.gate(format!("{prefix}_A0"), GateKind::And, [selb, when_zero])?;
        let a1 = self.gate(format!("{prefix}_A1"), GateKind::And, [sel, when_one])?;
        self.gate(format!("{prefix}_OR"), GateKind::Or, [a0, a1])
    }

    /// Marks a node as a primary output. A node may be marked repeatedly;
    /// marks are deduplicated.
    pub fn mark_output(&mut self, id: NodeId) {
        if !self.outputs.contains(&id) {
            self.outputs.push(id);
        }
    }

    /// Validates the circuit and produces the immutable [`Netlist`].
    ///
    /// # Errors
    ///
    /// Returns the first of: a deferred [`BuildError::DuplicateName`], a
    /// [`BuildError::UnconnectedDff`], or a
    /// [`BuildError::CombinationalCycle`].
    pub fn finish(self) -> Result<Netlist, BuildError> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        for &ff in &self.dffs {
            if self.nodes[ff.index()].fanins.is_empty() {
                return Err(BuildError::UnconnectedDff(
                    self.nodes[ff.index()].name.clone(),
                ));
            }
        }

        let n = self.nodes.len();

        // Kahn's algorithm over combinational gates. DFF outputs, inputs and
        // constants are sources; DFF D-inputs are sinks (the DFF edge does
        // not propagate within a cycle).
        let mut indeg = vec![0usize; n];
        for (i, node) in self.nodes.iter().enumerate() {
            if node.kind.is_gate() {
                indeg[i] = node
                    .fanins
                    .iter()
                    .filter(|f| self.nodes[f.index()].kind.is_gate())
                    .count();
            }
        }
        // gate-to-gate adjacency via fanouts computed below; do a simple
        // worklist instead to avoid building it twice.
        let mut fanouts: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            for &f in &node.fanins {
                fanouts[f.index()].push(NodeId(i as u32));
            }
        }

        let mut topo: Vec<NodeId> = Vec::with_capacity(n);
        let mut ready: Vec<NodeId> = (0..n)
            .filter(|&i| self.nodes[i].kind.is_gate() && indeg[i] == 0)
            .map(|i| NodeId(i as u32))
            .collect();
        while let Some(g) = ready.pop() {
            topo.push(g);
            for &out in &fanouts[g.index()] {
                if self.nodes[out.index()].kind.is_gate() {
                    indeg[out.index()] -= 1;
                    if indeg[out.index()] == 0 {
                        ready.push(out);
                    }
                }
            }
        }
        let num_gates = self.nodes.iter().filter(|nd| nd.kind.is_gate()).count();
        if topo.len() != num_gates {
            let on = self
                .nodes
                .iter()
                .enumerate()
                .find(|(i, nd)| nd.kind.is_gate() && indeg[*i] > 0)
                .map(|(_, nd)| nd.name.clone())
                .unwrap_or_default();
            return Err(BuildError::CombinationalCycle { on });
        }

        let mut level = vec![0u32; n];
        for &g in &topo {
            level[g.index()] = 1 + self.nodes[g.index()]
                .fanins
                .iter()
                .map(|f| level[f.index()])
                .max()
                .unwrap_or(0);
        }

        let ff_index_of = self
            .dffs
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();

        Ok(Netlist {
            name: self.name,
            nodes: self.nodes,
            inputs: self.inputs,
            outputs: self.outputs,
            dffs: self.dffs,
            name_index: self.name_index,
            fanouts,
            topo,
            level,
            ff_index_of,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_names_are_reported_at_finish() {
        let mut b = NetlistBuilder::new("dup");
        let a = b.input("A");
        let _ = b.gate("A", GateKind::Not, [a]).unwrap();
        assert!(matches!(b.finish(), Err(BuildError::DuplicateName(n)) if n == "A"));
    }

    #[test]
    fn bad_arity_is_immediate() {
        let mut b = NetlistBuilder::new("arity");
        let a = b.input("A");
        let c = b.input("B");
        let err = b.gate("N", GateKind::Not, [a, c]).unwrap_err();
        assert!(matches!(err, BuildError::BadArity { got: 2, .. }));
        let err = b.gate("E", GateKind::And, []).unwrap_err();
        assert!(matches!(err, BuildError::BadArity { got: 0, .. }));
    }

    #[test]
    fn unconnected_dff_is_rejected() {
        let mut b = NetlistBuilder::new("open");
        let _ = b.dff("Q");
        assert!(matches!(b.finish(), Err(BuildError::UnconnectedDff(n)) if n == "Q"));
    }

    #[test]
    fn combinational_cycle_is_rejected() {
        // g1 = NOT(g2); g2 = BUF(g1) — a cycle with no DFF on it. The
        // builder cannot express forward references for gates, so build the
        // cycle by reconnecting through a DFF-free trick: create g2 reading
        // g1 and then rebuild g1's fanin... fanins are immutable for gates,
        // so instead use two gates both reading each other via a DFF-less
        // path is impossible by construction. The only way to create a
        // cycle is via set_dff_input pointing *into* the cycle — verify the
        // DFF correctly breaks it instead.
        let mut b = NetlistBuilder::new("loop");
        let q = b.dff("Q");
        let g = b.gate("G", GateKind::Not, [q]).unwrap();
        b.set_dff_input(q, g).unwrap();
        assert!(b.finish().is_ok());
    }

    #[test]
    fn dff_breaks_cycles_and_levels_are_computed() {
        let mut b = NetlistBuilder::new("lv");
        let q = b.dff("Q");
        let n1 = b.gate("N1", GateKind::Not, [q]).unwrap();
        let n2 = b.gate("N2", GateKind::Not, [n1]).unwrap();
        b.set_dff_input(q, n2).unwrap();
        let nl = b.finish().unwrap();
        assert_eq!(nl.level(nl.find_node("N1").unwrap()), 1);
        assert_eq!(nl.level(nl.find_node("N2").unwrap()), 2);
        assert_eq!(nl.depth(), 2);
    }

    #[test]
    fn mux_decomposes_into_four_gates() {
        let mut b = NetlistBuilder::new("mux");
        let s = b.input("S");
        let x = b.input("X");
        let y = b.input("Y");
        let m = b.mux("M", s, x, y).unwrap();
        b.mark_output(m);
        let nl = b.finish().unwrap();
        assert_eq!(nl.num_gates(), 4);
        assert!(nl.find_node("M_SELB").is_some());
        assert!(nl.find_node("M_OR").is_some());
    }

    #[test]
    fn fresh_names_never_collide() {
        let mut b = NetlistBuilder::new("fresh");
        let a = b.input("n0"); // occupy the first auto name
        let g = b.gate_auto(GateKind::Not, [a]).unwrap();
        assert_ne!(b.finish().unwrap().node(g).name(), "n0");
    }

    #[test]
    fn set_dff_input_validates() {
        let mut b = NetlistBuilder::new("v");
        let a = b.input("A");
        let q = b.dff("Q");
        assert!(matches!(
            b.set_dff_input(a, q),
            Err(BuildError::NotADff(n)) if n == "A"
        ));
        assert!(b.set_dff_input(q, a).is_ok());
    }
}
