//! Netlist construction with validation.

use crate::model::{Netlist, Node, NodeId, NodeKind};
use mcp_logic::GateKind;
use std::collections::HashMap;
use std::fmt;

/// Error produced while building a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// Two nodes were created with the same name.
    DuplicateName(String),
    /// A gate was created with an input count its kind does not allow.
    BadArity {
        /// The offending gate's name.
        name: String,
        /// Its function.
        kind: GateKind,
        /// The number of fanins supplied.
        got: usize,
    },
    /// `finish` found a flip-flop whose D input was never connected.
    UnconnectedDff(String),
    /// `finish` found a flip-flop with more than one D driver.
    MultiDrivenDff(String),
    /// `finish` found a combinational cycle (a cycle not broken by a DFF).
    CombinationalCycle {
        /// Name of one node on the cycle.
        on: String,
    },
    /// A node id from a different builder was used.
    ForeignNode,
    /// `set_dff_input` was called on a node that is not a DFF.
    NotADff(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::DuplicateName(n) => write!(f, "duplicate node name `{n}`"),
            BuildError::BadArity { name, kind, got } => {
                write!(f, "gate `{name}` of kind {kind} cannot take {got} inputs")
            }
            BuildError::UnconnectedDff(n) => {
                write!(f, "flip-flop `{n}` has no D input connected")
            }
            BuildError::MultiDrivenDff(n) => {
                write!(f, "flip-flop `{n}` has more than one D driver")
            }
            BuildError::CombinationalCycle { on } => {
                write!(f, "combinational cycle through node `{on}`")
            }
            BuildError::ForeignNode => write!(f, "node id does not belong to this builder"),
            BuildError::NotADff(n) => write!(f, "node `{n}` is not a flip-flop"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Incremental builder for [`Netlist`].
///
/// Nodes are created with [`input`](Self::input), [`dff`](Self::dff),
/// [`constant`](Self::constant) and [`gate`](Self::gate) (or the
/// convenience helpers). Flip-flop D inputs may be connected after the
/// driving logic exists via [`set_dff_input`](Self::set_dff_input), which
/// is what makes sequential loops expressible. [`finish`](Self::finish)
/// validates the whole circuit and computes the derived structures.
///
/// # Example
///
/// ```
/// use mcp_logic::GateKind;
/// use mcp_netlist::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new("counter-bit");
/// let en = b.input("EN");
/// let q = b.dff("Q");
/// let d = b.gate("D", GateKind::Xor, [q, en])?;
/// b.set_dff_input(q, d)?;
/// b.mark_output(q);
/// let netlist = b.finish()?;
/// assert_eq!(netlist.stats().gates, 1);
/// # Ok::<(), mcp_netlist::BuildError>(())
/// ```
#[derive(Debug)]
pub struct NetlistBuilder {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    dffs: Vec<NodeId>,
    name_index: HashMap<String, NodeId>,
    errors: Vec<BuildError>,
    auto_counter: u64,
}

impl NetlistBuilder {
    /// Creates an empty builder for a circuit with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            dffs: Vec::new(),
            name_index: HashMap::new(),
            errors: Vec::new(),
            auto_counter: 0,
        }
    }

    fn add_node(&mut self, name: String, kind: NodeKind, fanins: Vec<NodeId>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        if self.name_index.insert(name.clone(), id).is_some() {
            self.errors.push(BuildError::DuplicateName(name.clone()));
        }
        self.nodes.push(Node { name, kind, fanins });
        id
    }

    /// Generates a fresh unique name with the given prefix.
    pub fn fresh_name(&mut self, prefix: &str) -> String {
        loop {
            let candidate = format!("{prefix}{}", self.auto_counter);
            self.auto_counter += 1;
            if !self.name_index.contains_key(&candidate) {
                return candidate;
            }
        }
    }

    /// Adds a primary input.
    pub fn input(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.add_node(name.into(), NodeKind::Input, Vec::new());
        self.inputs.push(id);
        id
    }

    /// Adds a constant driver.
    pub fn constant(&mut self, name: impl Into<String>, value: bool) -> NodeId {
        self.add_node(name.into(), NodeKind::Const(value), Vec::new())
    }

    /// Adds a flip-flop with an as-yet-unconnected D input.
    ///
    /// Connect it later with [`set_dff_input`](Self::set_dff_input);
    /// [`finish`](Self::finish) reports FFs left unconnected.
    pub fn dff(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.add_node(name.into(), NodeKind::Dff, Vec::new());
        self.dffs.push(id);
        id
    }

    /// Adds a flip-flop whose D input is already known.
    ///
    /// A `d` that does not belong to this builder is recorded as a
    /// deferred [`BuildError::ForeignNode`] reported by
    /// [`finish`](Self::finish).
    pub fn dff_with_input(&mut self, name: impl Into<String>, d: NodeId) -> NodeId {
        let id = self.dff(name);
        if d.index() >= self.nodes.len() {
            self.errors.push(BuildError::ForeignNode);
        } else {
            self.nodes[id.index()].fanins = vec![d];
        }
        id
    }

    /// Connects (or reconnects) a flip-flop's D input.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::NotADff`] if `ff` is not a flip-flop node and
    /// [`BuildError::ForeignNode`] if either id is out of range.
    pub fn set_dff_input(&mut self, ff: NodeId, d: NodeId) -> Result<(), BuildError> {
        if ff.index() >= self.nodes.len() || d.index() >= self.nodes.len() {
            return Err(BuildError::ForeignNode);
        }
        if !self.nodes[ff.index()].kind.is_dff() {
            return Err(BuildError::NotADff(self.nodes[ff.index()].name.clone()));
        }
        self.nodes[ff.index()].fanins = vec![d];
        Ok(())
    }

    /// Adds a combinational gate.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::BadArity`] when the fanin count is not allowed
    /// for `kind` (NOT/BUF take exactly one input, the n-ary gates at least
    /// one) and [`BuildError::ForeignNode`] when a fanin id is out of
    /// range.
    pub fn gate<I>(
        &mut self,
        name: impl Into<String>,
        kind: GateKind,
        fanins: I,
    ) -> Result<NodeId, BuildError>
    where
        I: IntoIterator<Item = NodeId>,
    {
        let name = name.into();
        let fanins: Vec<NodeId> = fanins.into_iter().collect();
        let ok = match kind.fixed_arity() {
            Some(n) => fanins.len() == n,
            None => !fanins.is_empty(),
        };
        if !ok {
            return Err(BuildError::BadArity {
                name,
                kind,
                got: fanins.len(),
            });
        }
        if fanins.iter().any(|f| f.index() >= self.nodes.len()) {
            return Err(BuildError::ForeignNode);
        }
        Ok(self.add_node(name, NodeKind::Gate(kind), fanins))
    }

    /// Adds a gate with a generated name (`prefix` + counter).
    ///
    /// # Errors
    ///
    /// Same as [`gate`](Self::gate).
    pub fn gate_auto<I>(&mut self, kind: GateKind, fanins: I) -> Result<NodeId, BuildError>
    where
        I: IntoIterator<Item = NodeId>,
    {
        let name = self.fresh_name("n");
        self.gate(name, kind, fanins)
    }

    /// Convenience: a NOT gate with a generated name.
    ///
    /// # Errors
    ///
    /// Same as [`gate`](Self::gate).
    pub fn not(&mut self, a: NodeId) -> Result<NodeId, BuildError> {
        self.gate_auto(GateKind::Not, [a])
    }

    /// Convenience: an AND gate with a generated name.
    ///
    /// # Errors
    ///
    /// Same as [`gate`](Self::gate).
    pub fn and<I: IntoIterator<Item = NodeId>>(&mut self, ins: I) -> Result<NodeId, BuildError> {
        self.gate_auto(GateKind::And, ins)
    }

    /// Convenience: an OR gate with a generated name.
    ///
    /// # Errors
    ///
    /// Same as [`gate`](Self::gate).
    pub fn or<I: IntoIterator<Item = NodeId>>(&mut self, ins: I) -> Result<NodeId, BuildError> {
        self.gate_auto(GateKind::Or, ins)
    }

    /// Convenience: a 2-to-1 multiplexer built from AND/OR/NOT gates, as a
    /// technology mapper would decompose it.
    ///
    /// Returns the output node of `sel ? when_one : when_zero`. Four gates
    /// named `<prefix>_SELB`, `<prefix>_A0`, `<prefix>_A1`, `<prefix>_OR`
    /// are created — the same shape as the paper's Fig.3 mapping.
    ///
    /// # Errors
    ///
    /// Same as [`gate`](Self::gate) (duplicate prefix names surface at
    /// [`finish`](Self::finish)).
    pub fn mux(
        &mut self,
        prefix: &str,
        sel: NodeId,
        when_zero: NodeId,
        when_one: NodeId,
    ) -> Result<NodeId, BuildError> {
        let selb = self.gate(format!("{prefix}_SELB"), GateKind::Not, [sel])?;
        let a0 = self.gate(format!("{prefix}_A0"), GateKind::And, [selb, when_zero])?;
        let a1 = self.gate(format!("{prefix}_A1"), GateKind::And, [sel, when_one])?;
        self.gate(format!("{prefix}_OR"), GateKind::Or, [a0, a1])
    }

    /// Appends a node exactly as given, with no checks — the entry point
    /// for deserializers reconstructing a netlist from external data.
    ///
    /// The usual invariants (gate arity, single DFF driver, unique names)
    /// are **not** enforced here; [`finish`](Self::finish) validates them
    /// all at the end, and [`finish_unchecked`](Self::finish_unchecked)
    /// defers judgement to the `mcp-lint` rules.
    ///
    /// Inputs and flip-flops are registered in declaration order, exactly
    /// like [`input`](Self::input) and [`dff`](Self::dff).
    pub fn raw_node(
        &mut self,
        name: impl Into<String>,
        kind: NodeKind,
        fanins: Vec<NodeId>,
    ) -> NodeId {
        let id = self.add_node(name.into(), kind, fanins);
        match kind {
            NodeKind::Input => self.inputs.push(id),
            NodeKind::Dff => self.dffs.push(id),
            NodeKind::Const(_) | NodeKind::Gate(_) => {}
        }
        id
    }

    /// Appends an **additional** D driver to a flip-flop — netlist surgery
    /// for deserializers that must represent a multiply-driven register
    /// before judging it. [`finish`](Self::finish) rejects the result with
    /// [`BuildError::MultiDrivenDff`]; only
    /// [`finish_unchecked`](Self::finish_unchecked) lets it through, for
    /// `mcp-lint` to diagnose.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::ForeignNode`] if either id is out of range and
    /// [`BuildError::NotADff`] if `ff` is not a flip-flop.
    pub fn add_dff_driver(&mut self, ff: NodeId, d: NodeId) -> Result<(), BuildError> {
        if ff.index() >= self.nodes.len() || d.index() >= self.nodes.len() {
            return Err(BuildError::ForeignNode);
        }
        if !self.nodes[ff.index()].kind.is_dff() {
            return Err(BuildError::NotADff(self.nodes[ff.index()].name.clone()));
        }
        self.nodes[ff.index()].fanins.push(d);
        Ok(())
    }

    /// Replaces fanin `position` of an existing gate — netlist surgery for
    /// deserializers, rewriters and the lint-rule test corpus.
    ///
    /// Unlike gate creation, rewiring can introduce combinational cycles;
    /// [`finish`](Self::finish) rejects them, while
    /// [`finish_unchecked`](Self::finish_unchecked) lets them through for
    /// `mcp-lint` to diagnose.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::ForeignNode`] if either id is out of range,
    /// `node` is not a combinational gate (DFF inputs are reconnected with
    /// [`set_dff_input`](Self::set_dff_input)), or `position` is not one of
    /// its fanin slots.
    pub fn rewire_fanin(
        &mut self,
        node: NodeId,
        position: usize,
        new_fanin: NodeId,
    ) -> Result<(), BuildError> {
        if node.index() >= self.nodes.len() || new_fanin.index() >= self.nodes.len() {
            return Err(BuildError::ForeignNode);
        }
        let target = &mut self.nodes[node.index()];
        if !target.kind.is_gate() || position >= target.fanins.len() {
            return Err(BuildError::ForeignNode);
        }
        target.fanins[position] = new_fanin;
        Ok(())
    }

    /// Marks a node as a primary output. A node may be marked repeatedly;
    /// marks are deduplicated.
    pub fn mark_output(&mut self, id: NodeId) {
        if !self.outputs.contains(&id) {
            self.outputs.push(id);
        }
    }

    /// Validates the circuit and produces the immutable [`Netlist`].
    ///
    /// # Errors
    ///
    /// Returns the first of: a deferred [`BuildError::DuplicateName`] or
    /// [`BuildError::ForeignNode`], a [`BuildError::UnconnectedDff`] (a
    /// flip-flop whose D input was never connected via
    /// [`set_dff_input`](Self::set_dff_input) or
    /// [`dff_with_input`](Self::dff_with_input)), a
    /// [`BuildError::MultiDrivenDff`] (extra drivers added via
    /// [`add_dff_driver`](Self::add_dff_driver)), a fanin id out of range
    /// ([`BuildError::ForeignNode`]), or a
    /// [`BuildError::CombinationalCycle`].
    pub fn finish(mut self) -> Result<Netlist, BuildError> {
        if let Some(e) = std::mem::take(&mut self.errors).into_iter().next() {
            return Err(e);
        }
        for &ff in &self.dffs {
            match self.nodes[ff.index()].fanins.len() {
                0 => {
                    return Err(BuildError::UnconnectedDff(
                        self.nodes[ff.index()].name.clone(),
                    ))
                }
                1 => {}
                _ => {
                    return Err(BuildError::MultiDrivenDff(
                        self.nodes[ff.index()].name.clone(),
                    ))
                }
            }
        }
        let n = self.nodes.len();
        if self
            .nodes
            .iter()
            .any(|node| node.fanins.iter().any(|f| f.index() >= n))
        {
            return Err(BuildError::ForeignNode);
        }
        // Re-check gate arity: `gate` enforces it at creation, but
        // `raw_node` defers everything to here.
        for node in &self.nodes {
            if let NodeKind::Gate(kind) = node.kind {
                let ok = match kind.fixed_arity() {
                    Some(k) => node.fanins.len() == k,
                    None => !node.fanins.is_empty(),
                };
                if !ok {
                    return Err(BuildError::BadArity {
                        name: node.name.clone(),
                        kind,
                        got: node.fanins.len(),
                    });
                }
            }
        }

        let (fanouts, topo, level, cyclic) = derive_structures(&self.nodes);
        if let Some(i) = cyclic {
            return Err(BuildError::CombinationalCycle {
                on: self.nodes[i].name.clone(),
            });
        }

        Ok(self.into_netlist(fanouts, topo, level))
    }

    /// Produces a [`Netlist`] **without validating it**.
    ///
    /// Deferred errors (duplicate names), unconnected flip-flops and
    /// combinational cycles are all let through; the derived structures are
    /// computed best-effort (gates on or downstream of a combinational
    /// cycle are missing from the topological order and keep level 0).
    ///
    /// This is the entry point for layers that must represent a circuit
    /// *before* judging it — deserializers, repair flows, and above all the
    /// `mcp-lint` static-analysis pass, whose negative-test corpus is built
    /// of exactly the malformed circuits [`finish`](Self::finish) rejects.
    /// Run the lint rules over the result before trusting any analysis on
    /// it.
    ///
    /// # Panics
    ///
    /// Panics if any fanin id is out of range (a foreign [`NodeId`] cannot
    /// be represented even permissively).
    pub fn finish_unchecked(self) -> Netlist {
        let n = self.nodes.len();
        assert!(
            self.nodes
                .iter()
                .all(|node| node.fanins.iter().all(|f| f.index() < n)),
            "finish_unchecked: fanin id out of range"
        );
        let (fanouts, topo, level, _cyclic) = derive_structures(&self.nodes);
        self.into_netlist(fanouts, topo, level)
    }

    fn into_netlist(
        self,
        fanouts: Vec<Vec<NodeId>>,
        topo: Vec<NodeId>,
        level: Vec<u32>,
    ) -> Netlist {
        let ff_index_of = self
            .dffs
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        Netlist {
            name: self.name,
            nodes: self.nodes,
            inputs: self.inputs,
            outputs: self.outputs,
            dffs: self.dffs,
            name_index: self.name_index,
            fanouts,
            topo,
            level,
            ff_index_of,
        }
    }
}

/// Computes fanouts, the combinational topological order and per-node
/// levels. Returns `(fanouts, topo, level, cyclic)` where `cyclic` is the
/// index of some gate on (or fed by) a combinational cycle, if any — in
/// that case `topo` covers only the acyclic portion and the stranded gates
/// keep level 0.
#[allow(clippy::type_complexity)]
fn derive_structures(nodes: &[Node]) -> (Vec<Vec<NodeId>>, Vec<NodeId>, Vec<u32>, Option<usize>) {
    let n = nodes.len();

    // Kahn's algorithm over combinational gates. DFF outputs, inputs and
    // constants are sources; DFF D-inputs are sinks (the DFF edge does
    // not propagate within a cycle).
    let mut indeg = vec![0usize; n];
    for (i, node) in nodes.iter().enumerate() {
        if node.kind.is_gate() {
            indeg[i] = node
                .fanins
                .iter()
                .filter(|f| nodes[f.index()].kind.is_gate())
                .count();
        }
    }
    // gate-to-gate adjacency via fanouts computed below; do a simple
    // worklist instead to avoid building it twice.
    let mut fanouts: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for (i, node) in nodes.iter().enumerate() {
        for &f in &node.fanins {
            fanouts[f.index()].push(NodeId(i as u32));
        }
    }

    let mut topo: Vec<NodeId> = Vec::with_capacity(n);
    let mut ready: Vec<NodeId> = (0..n)
        .filter(|&i| nodes[i].kind.is_gate() && indeg[i] == 0)
        .map(|i| NodeId(i as u32))
        .collect();
    while let Some(g) = ready.pop() {
        topo.push(g);
        for &out in &fanouts[g.index()] {
            if nodes[out.index()].kind.is_gate() {
                indeg[out.index()] -= 1;
                if indeg[out.index()] == 0 {
                    ready.push(out);
                }
            }
        }
    }
    let num_gates = nodes.iter().filter(|nd| nd.kind.is_gate()).count();
    let cyclic = if topo.len() != num_gates {
        nodes
            .iter()
            .enumerate()
            .position(|(i, nd)| nd.kind.is_gate() && indeg[i] > 0)
    } else {
        None
    };

    let mut level = vec![0u32; n];
    for &g in &topo {
        level[g.index()] = 1 + nodes[g.index()]
            .fanins
            .iter()
            .map(|f| level[f.index()])
            .max()
            .unwrap_or(0);
    }

    (fanouts, topo, level, cyclic)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_names_are_reported_at_finish() {
        let mut b = NetlistBuilder::new("dup");
        let a = b.input("A");
        let _ = b.gate("A", GateKind::Not, [a]).unwrap();
        assert!(matches!(b.finish(), Err(BuildError::DuplicateName(n)) if n == "A"));
    }

    #[test]
    fn bad_arity_is_immediate() {
        let mut b = NetlistBuilder::new("arity");
        let a = b.input("A");
        let c = b.input("B");
        let err = b.gate("N", GateKind::Not, [a, c]).unwrap_err();
        assert!(matches!(err, BuildError::BadArity { got: 2, .. }));
        let err = b.gate("E", GateKind::And, []).unwrap_err();
        assert!(matches!(err, BuildError::BadArity { got: 0, .. }));
    }

    #[test]
    fn unconnected_dff_is_rejected() {
        let mut b = NetlistBuilder::new("open");
        let _ = b.dff("Q");
        assert!(matches!(b.finish(), Err(BuildError::UnconnectedDff(n)) if n == "Q"));
    }

    #[test]
    fn combinational_cycle_is_rejected() {
        // A cycle through a DFF is fine — the FF boundary breaks it.
        let mut b = NetlistBuilder::new("loop");
        let q = b.dff("Q");
        let g = b.gate("G", GateKind::Not, [q]).unwrap();
        b.set_dff_input(q, g).unwrap();
        assert!(b.finish().is_ok());

        // g1 = NOT(g2); g2 = BUF(g1): a DFF-free cycle, expressible only
        // through rewiring, is rejected at finish.
        let mut b = NetlistBuilder::new("comb-loop");
        let a = b.input("A");
        let g1 = b.gate("G1", GateKind::Not, [a]).unwrap();
        let g2 = b.gate("G2", GateKind::Buf, [g1]).unwrap();
        b.rewire_fanin(g1, 0, g2).unwrap();
        assert!(matches!(
            b.finish(),
            Err(BuildError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn rewire_fanin_validates_its_target() {
        let mut b = NetlistBuilder::new("rw");
        let a = b.input("A");
        let q = b.dff("Q");
        let g = b.gate("G", GateKind::Not, [a]).unwrap();
        b.set_dff_input(q, g).unwrap();
        assert!(matches!(
            b.rewire_fanin(q, 0, a),
            Err(BuildError::ForeignNode)
        ));
        assert!(matches!(
            b.rewire_fanin(g, 1, a),
            Err(BuildError::ForeignNode)
        ));
        assert!(matches!(
            b.rewire_fanin(g, 0, NodeId::from_index(99)),
            Err(BuildError::ForeignNode)
        ));
        b.rewire_fanin(g, 0, q).unwrap();
        assert!(b.finish().is_ok());
    }

    #[test]
    fn dff_breaks_cycles_and_levels_are_computed() {
        let mut b = NetlistBuilder::new("lv");
        let q = b.dff("Q");
        let n1 = b.gate("N1", GateKind::Not, [q]).unwrap();
        let n2 = b.gate("N2", GateKind::Not, [n1]).unwrap();
        b.set_dff_input(q, n2).unwrap();
        let nl = b.finish().unwrap();
        assert_eq!(nl.level(nl.find_node("N1").unwrap()), 1);
        assert_eq!(nl.level(nl.find_node("N2").unwrap()), 2);
        assert_eq!(nl.depth(), 2);
    }

    #[test]
    fn mux_decomposes_into_four_gates() {
        let mut b = NetlistBuilder::new("mux");
        let s = b.input("S");
        let x = b.input("X");
        let y = b.input("Y");
        let m = b.mux("M", s, x, y).unwrap();
        b.mark_output(m);
        let nl = b.finish().unwrap();
        assert_eq!(nl.num_gates(), 4);
        assert!(nl.find_node("M_SELB").is_some());
        assert!(nl.find_node("M_OR").is_some());
    }

    #[test]
    fn fresh_names_never_collide() {
        let mut b = NetlistBuilder::new("fresh");
        let a = b.input("n0"); // occupy the first auto name
        let g = b.gate_auto(GateKind::Not, [a]).unwrap();
        assert_ne!(b.finish().unwrap().node(g).name(), "n0");
    }

    #[test]
    fn dff_with_input_rejects_foreign_nodes_at_finish() {
        let mut b = NetlistBuilder::new("foreign");
        let bogus = NodeId::from_index(7); // no such node in this builder
        let _ = b.dff_with_input("Q", bogus);
        assert!(matches!(b.finish(), Err(BuildError::ForeignNode)));
    }

    #[test]
    fn finish_unchecked_permits_what_finish_rejects() {
        // Unconnected DFF.
        let mut b = NetlistBuilder::new("open");
        let q = b.dff("Q");
        let nl = b.finish_unchecked();
        assert!(nl.node(q).fanins().is_empty());
        assert_eq!(nl.num_ffs(), 1);

        // Duplicate names.
        let mut b = NetlistBuilder::new("dup");
        let a = b.input("A");
        let g = b.gate("A", GateKind::Not, [a]).unwrap();
        let nl = b.finish_unchecked();
        assert_eq!(nl.node(g).name(), nl.node(a).name());

        // A combinational cycle (forged through a reconnected "DFF" slot is
        // impossible; forge it by building the netlist by hand below in the
        // lint crate — here just check the derived structures stay sane
        // when a gate is stranded).
        let mut b = NetlistBuilder::new("lv");
        let q = b.dff("Q");
        let n1 = b.gate("N1", GateKind::Not, [q]).unwrap();
        b.set_dff_input(q, n1).unwrap();
        let nl = b.finish_unchecked();
        assert_eq!(nl.num_gates(), 1);
        assert_eq!(nl.level(n1), 1);
    }

    #[test]
    fn raw_node_defers_validation_to_finish() {
        let mut b = NetlistBuilder::new("raw");
        let a = b.raw_node("a", NodeKind::Input, Vec::new());
        let q = b.raw_node("q", NodeKind::Dff, vec![a]);
        let _zw = b.raw_node("zw", NodeKind::Gate(GateKind::And), Vec::new());
        b.mark_output(q);
        assert!(matches!(
            b.finish(),
            Err(BuildError::BadArity { got: 0, .. })
        ));

        let mut b = NetlistBuilder::new("raw-ok");
        let a = b.raw_node("a", NodeKind::Input, Vec::new());
        let g = b.raw_node("g", NodeKind::Gate(GateKind::Not), vec![a]);
        let q = b.raw_node("q", NodeKind::Dff, vec![g]);
        b.mark_output(q);
        let nl = b.finish().unwrap();
        assert_eq!(nl.num_inputs(), 1);
        assert_eq!(nl.num_ffs(), 1);
        assert_eq!(nl.ff_d_input(0), g);
    }

    #[test]
    fn multi_driven_dff_is_rejected_at_finish() {
        let mut b = NetlistBuilder::new("md");
        let a = b.input("A");
        let c = b.input("B");
        let q = b.dff("Q");
        b.set_dff_input(q, a).unwrap();
        b.add_dff_driver(q, c).unwrap();
        assert!(matches!(
            b.rewire_fanin(q, 0, a),
            Err(BuildError::ForeignNode)
        ));
        assert!(matches!(b.finish(), Err(BuildError::MultiDrivenDff(n)) if n == "Q"));
    }

    #[test]
    fn set_dff_input_validates() {
        let mut b = NetlistBuilder::new("v");
        let a = b.input("A");
        let q = b.dff("Q");
        assert!(matches!(
            b.set_dff_input(a, q),
            Err(BuildError::NotADff(n)) if n == "A"
        ));
        assert!(b.set_dff_input(q, a).is_ok());
    }
}
