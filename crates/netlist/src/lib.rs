//! Gate-level synchronous sequential netlists.
//!
//! This crate provides the circuit substrate the whole workspace is built
//! on: an arena-based netlist model for synchronous sequential circuits
//! (combinational gates + single-clock positive-edge D flip-flops, no
//! direct FF-to-FF feedback through latches), exactly the circuit class of
//! the reproduced paper.
//!
//! Main entry points:
//!
//! * [`NetlistBuilder`] — programmatic construction with full validation
//!   (arity checks, combinational-cycle detection, dangling D inputs).
//! * [`mod bench`](mod@bench) — ISCAS89 `.bench` format parser and writer, so the real
//!   benchmark suite can be analyzed when the files are available.
//! * [`Netlist`] — the immutable circuit with precomputed topological
//!   order, levels and fanouts, plus the structural analyses the paper's
//!   step 1 needs ([`Netlist::connected_ff_pairs`]).
//! * [`expand::Expanded`] — the time-frame expansion used by the
//!   implication engine, the ATPG search and the SAT encoding: `F`
//!   combinational copies of the logic connected through the FF boundary,
//!   exposing the value of any flip-flop at times `t .. t+F`.
//! * [`expand::Slice`] — the cone-of-influence slice of an expansion
//!   ([`expand::Expanded::build_slice`]): per-pair engine work scales with
//!   the pair's cone instead of the whole circuit.
//! * [`diff()`] — the name-keyed structural delta between two revisions of
//!   a circuit, feeding ECO-style incremental re-analysis.
//!
//! # Example
//!
//! ```
//! use mcp_logic::GateKind;
//! use mcp_netlist::NetlistBuilder;
//!
//! let mut b = NetlistBuilder::new("toggle");
//! let ff = b.dff("Q");
//! let nq = b.gate("NQ", GateKind::Not, [ff])?;
//! b.set_dff_input(ff, nq)?;
//! b.mark_output(ff);
//! let netlist = b.finish()?;
//!
//! assert_eq!(netlist.num_ffs(), 1);
//! assert_eq!(netlist.connected_ff_pairs(), vec![(0, 0)]);
//! # Ok::<(), mcp_netlist::BuildError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod builder;
pub mod diff;
pub mod dot;
pub mod expand;
pub mod graph;
pub mod model;
pub mod sweep;

pub use builder::{BuildError, NetlistBuilder};
pub use diff::{diff, NetlistDiff};
pub use expand::{Expanded, Slice, VarOrigin, XId, XKind};
pub use model::{Netlist, Node, NodeId, NodeKind, Stats};
pub use sweep::{sweep, SweepStats};
