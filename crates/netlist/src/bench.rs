//! ISCAS89 `.bench` format parser and writer.
//!
//! The `.bench` format is the distribution format of the ISCAS89 benchmark
//! suite the paper evaluates on:
//!
//! ```text
//! # s-era comment
//! INPUT(G0)
//! OUTPUT(G17)
//! G10 = DFF(G14)
//! G11 = NOT(G5)
//! G14 = AND(G0, G11)
//! ```
//!
//! [`parse`] accepts the full suite syntax (case-insensitive keywords,
//! forward references, `BUF`/`BUFF` spellings) plus a `CONST(0|1)`
//! extension so every [`Netlist`] round-trips through [`to_bench`].
//!
//! # Example
//!
//! ```
//! use mcp_netlist::bench;
//!
//! let src = "
//!     INPUT(A)
//!     OUTPUT(Q)
//!     Q = DFF(D)
//!     D = XOR(Q, A)
//! ";
//! let netlist = bench::parse("toggle", src)?;
//! assert_eq!(netlist.num_ffs(), 1);
//! let round = bench::parse("again", &bench::to_bench(&netlist))?;
//! assert_eq!(round.stats(), netlist.stats());
//! # Ok::<(), bench::ParseBenchError>(())
//! ```

use crate::builder::{BuildError, NetlistBuilder};
use crate::model::{Netlist, NodeId, NodeKind};
use mcp_logic::GateKind;
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

/// Error produced while parsing a `.bench` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBenchError {
    /// 1-based line number of the offending line (0 when the error is
    /// global, e.g. an undefined signal discovered at link time).
    pub line: usize,
    /// Explanation of what went wrong.
    pub message: String,
}

impl fmt::Display for ParseBenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "bench parse error: {}", self.message)
        } else {
            write!(
                f,
                "bench parse error at line {}: {}",
                self.line, self.message
            )
        }
    }
}

impl std::error::Error for ParseBenchError {}

impl From<BuildError> for ParseBenchError {
    fn from(e: BuildError) -> Self {
        ParseBenchError {
            line: 0,
            message: e.to_string(),
        }
    }
}

#[derive(Debug)]
enum Stmt {
    Input(String),
    Output(String),
    Def {
        name: String,
        func: String,
        args: Vec<String>,
    },
}

fn lex(src: &str) -> Result<Vec<(usize, Stmt)>, ParseBenchError> {
    let mut stmts = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |message: String| ParseBenchError {
            line: lineno,
            message,
        };
        if let Some(rest) = strip_call(line, "INPUT") {
            stmts.push((lineno, Stmt::Input(rest.trim().to_owned())));
        } else if let Some(rest) = strip_call(line, "OUTPUT") {
            stmts.push((lineno, Stmt::Output(rest.trim().to_owned())));
        } else if let Some(eq) = line.find('=') {
            let name = line[..eq].trim().to_owned();
            let rhs = line[eq + 1..].trim();
            let open = rhs
                .find('(')
                .ok_or_else(|| err(format!("expected `FUNC(args)` after `=`, got `{rhs}`")))?;
            if !rhs.ends_with(')') {
                return Err(err(format!("missing `)` in `{rhs}`")));
            }
            let func = rhs[..open].trim().to_owned();
            let args: Vec<String> = rhs[open + 1..rhs.len() - 1]
                .split(',')
                .map(|a| a.trim().to_owned())
                .filter(|a| !a.is_empty())
                .collect();
            if name.is_empty() {
                return Err(err("empty signal name on left of `=`".to_owned()));
            }
            stmts.push((lineno, Stmt::Def { name, func, args }));
        } else {
            return Err(err(format!("unrecognized statement `{line}`")));
        }
    }
    Ok(stmts)
}

fn strip_call<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let upper = line.to_ascii_uppercase();
    if upper.starts_with(keyword) {
        let rest = line[keyword.len()..].trim();
        rest.strip_prefix('(')?.strip_suffix(')')
    } else {
        None
    }
}

/// Parses a `.bench` source into a [`Netlist`].
///
/// Signals referenced before (or without) a definition are resolved in a
/// second pass; a referenced but never-defined, never-declared signal is an
/// error. Keywords are case-insensitive. The non-standard `CONST(0)` /
/// `CONST(1)` definition is accepted for round-tripping constant drivers.
///
/// # Errors
///
/// Returns [`ParseBenchError`] on syntax errors, unknown gate keywords,
/// undefined signals, duplicate definitions, or any structural
/// [`BuildError`] (bad arity, combinational cycle, ...).
pub fn parse(name: &str, src: &str) -> Result<Netlist, ParseBenchError> {
    let stmts = lex(src)?;
    let mut b = NetlistBuilder::new(name);
    let mut ids: HashMap<String, NodeId> = HashMap::new();
    let mut dff_inputs: Vec<(usize, NodeId, String)> = Vec::new();
    let mut gate_defs: Vec<(usize, String, GateKind, Vec<String>)> = Vec::new();
    let mut outputs: Vec<(usize, String)> = Vec::new();

    // Pass 1: create all named nodes (inputs, FFs, constants); record gate
    // definitions for pass 2 so forward references work.
    for (line, stmt) in &stmts {
        match stmt {
            Stmt::Input(sig) => {
                if ids.contains_key(sig) {
                    return Err(ParseBenchError {
                        line: *line,
                        message: format!("signal `{sig}` defined twice"),
                    });
                }
                ids.insert(sig.clone(), b.input(sig.clone()));
            }
            Stmt::Output(sig) => outputs.push((*line, sig.clone())),
            Stmt::Def { name, func, args } => {
                if ids.contains_key(name) {
                    return Err(ParseBenchError {
                        line: *line,
                        message: format!("signal `{name}` defined twice"),
                    });
                }
                let fu = func.to_ascii_uppercase();
                if fu == "DFF" {
                    if args.len() != 1 {
                        return Err(ParseBenchError {
                            line: *line,
                            message: format!("DFF takes one input, got {}", args.len()),
                        });
                    }
                    let id = b.dff(name.clone());
                    ids.insert(name.clone(), id);
                    dff_inputs.push((*line, id, args[0].clone()));
                } else if fu == "CONST" {
                    let v = match args.as_slice() {
                        [a] if a == "0" => false,
                        [a] if a == "1" => true,
                        _ => {
                            return Err(ParseBenchError {
                                line: *line,
                                message: "CONST takes a single 0 or 1".to_owned(),
                            })
                        }
                    };
                    ids.insert(name.clone(), b.constant(name.clone(), v));
                } else {
                    let kind: GateKind = fu.parse().map_err(|e| ParseBenchError {
                        line: *line,
                        message: format!("{e}"),
                    })?;
                    gate_defs.push((*line, name.clone(), kind, args.clone()));
                }
            }
        }
    }

    // Pass 2: create gates in dependency order (iterate until fixpoint;
    // gates whose fanins are all known can be created). `.bench` files may
    // list definitions in any order.
    let mut remaining = gate_defs;
    while !remaining.is_empty() {
        let before = remaining.len();
        let mut next = Vec::new();
        for (line, gname, kind, args) in remaining {
            if args.iter().all(|a| ids.contains_key(a)) {
                let fanins: Vec<NodeId> = args.iter().map(|a| ids[a]).collect();
                let id = b
                    .gate(gname.clone(), kind, fanins)
                    .map_err(|e| ParseBenchError {
                        line,
                        message: e.to_string(),
                    })?;
                ids.insert(gname, id);
            } else {
                next.push((line, gname, kind, args));
            }
        }
        remaining = next;
        if remaining.len() == before {
            // No progress: an undefined signal or a combinational cycle.
            let (line, gname, _, args) = &remaining[0];
            let missing: Vec<&str> = args
                .iter()
                .filter(|a| !ids.contains_key(a.as_str()))
                .map(String::as_str)
                .collect();
            return Err(ParseBenchError {
                line: *line,
                message: format!(
                    "cannot resolve inputs of `{gname}`: undefined or cyclic signal(s) {}",
                    missing.join(", ")
                ),
            });
        }
    }

    for (line, id, d) in dff_inputs {
        let d_id = *ids.get(&d).ok_or_else(|| ParseBenchError {
            line,
            message: format!("DFF input `{d}` is undefined"),
        })?;
        b.set_dff_input(id, d_id)?;
    }
    for (line, sig) in outputs {
        let id = *ids.get(&sig).ok_or_else(|| ParseBenchError {
            line,
            message: format!("OUTPUT signal `{sig}` is undefined"),
        })?;
        b.mark_output(id);
    }
    Ok(b.finish()?)
}

/// Parses a `.bench` source **permissively**, deferring structural
/// judgement to the `mcp-lint` rules.
///
/// Where [`parse`] rejects combinational cycles, unconnected flip-flops
/// and duplicate definitions outright, this variant reconstructs the
/// netlist exactly as written (via
/// [`NetlistBuilder::raw_node`]/[`NetlistBuilder::finish_unchecked`]) so
/// a linter can *report* the defects instead. Lexical errors and unknown
/// gate keywords are still hard errors — there is no netlist to lint
/// without a parse.
///
/// Permissive readings of otherwise-rejected input:
///
/// * cyclic gate definitions are wired as written (gates are assigned ids
///   in textual order, so any gate may reference any other);
/// * a duplicated signal name creates a second node; references resolve
///   to the first definition;
/// * a `DFF` whose data signal is undefined (or missing) stays
///   unconnected;
/// * an `OUTPUT` naming an undefined signal is dropped.
///
/// # Errors
///
/// Returns [`ParseBenchError`] on syntax errors, unknown gate keywords,
/// or gate fanins that no statement defines.
pub fn parse_unchecked(name: &str, src: &str) -> Result<Netlist, ParseBenchError> {
    let stmts = lex(src)?;
    let mut b = NetlistBuilder::new(name);
    let mut ids: HashMap<String, NodeId> = HashMap::new();
    let mut dff_inputs: Vec<(NodeId, String)> = Vec::new();
    let mut gate_defs: Vec<(usize, String, GateKind, Vec<String>)> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut created = 0usize;

    for (line, stmt) in &stmts {
        match stmt {
            Stmt::Input(sig) => {
                let id = b.input(sig.clone());
                created += 1;
                ids.entry(sig.clone()).or_insert(id);
            }
            Stmt::Output(sig) => outputs.push(sig.clone()),
            Stmt::Def { name, func, args } => {
                let fu = func.to_ascii_uppercase();
                if fu == "DFF" {
                    let id = b.dff(name.clone());
                    created += 1;
                    ids.entry(name.clone()).or_insert(id);
                    if let Some(d) = args.first() {
                        dff_inputs.push((id, d.clone()));
                    }
                } else if fu == "CONST" {
                    let v = matches!(args.as_slice(), [a] if a == "1");
                    let id = b.constant(name.clone(), v);
                    created += 1;
                    ids.entry(name.clone()).or_insert(id);
                } else {
                    let kind: GateKind = fu.parse().map_err(|e| ParseBenchError {
                        line: *line,
                        message: format!("{e}"),
                    })?;
                    gate_defs.push((*line, name.clone(), kind, args.clone()));
                }
            }
        }
    }

    // Gates receive the next ids in textual order. Precomputing the
    // name→id map up front lets a gate reference any other gate —
    // including itself — so cyclic definitions parse.
    for (i, (_, gname, _, _)) in gate_defs.iter().enumerate() {
        ids.entry(gname.clone())
            .or_insert_with(|| NodeId::from_index(created + i));
    }
    for (line, gname, kind, args) in gate_defs {
        let fanins = args
            .iter()
            .map(|a| {
                ids.get(a).copied().ok_or_else(|| ParseBenchError {
                    line,
                    message: format!("signal `{a}` is undefined"),
                })
            })
            .collect::<Result<Vec<NodeId>, ParseBenchError>>()?;
        b.raw_node(gname, NodeKind::Gate(kind), fanins);
    }
    for (id, d) in dff_inputs {
        if let Some(&d_id) = ids.get(&d) {
            let _ = b.add_dff_driver(id, d_id);
        }
    }
    for sig in outputs {
        if let Some(&id) = ids.get(&sig) {
            b.mark_output(id);
        }
    }
    Ok(b.finish_unchecked())
}

/// Serializes a netlist to `.bench` source.
///
/// The output parses back (see [`parse`]) to a netlist with identical
/// structure. Constant drivers use the `CONST(0|1)` extension.
pub fn to_bench(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", netlist.name());
    for &pi in netlist.inputs() {
        let _ = writeln!(out, "INPUT({})", netlist.node(pi).name());
    }
    for &po in netlist.outputs() {
        let _ = writeln!(out, "OUTPUT({})", netlist.node(po).name());
    }
    for (_, node) in netlist.nodes() {
        match node.kind() {
            NodeKind::Input => {}
            NodeKind::Const(v) => {
                let _ = writeln!(out, "{} = CONST({})", node.name(), u8::from(v));
            }
            NodeKind::Dff => {
                let d = netlist.node(node.fanins()[0]).name();
                let _ = writeln!(out, "{} = DFF({})", node.name(), d);
            }
            NodeKind::Gate(kind) => {
                let args: Vec<&str> = node
                    .fanins()
                    .iter()
                    .map(|&f| netlist.node(f).name())
                    .collect();
                let _ = writeln!(
                    out,
                    "{} = {}({})",
                    node.name(),
                    kind.bench_keyword(),
                    args.join(", ")
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const S27ISH: &str = "
        # a small s27-flavoured circuit
        INPUT(G0)
        INPUT(G1)
        INPUT(G2)
        INPUT(G3)
        OUTPUT(G17)
        G5 = DFF(G10)
        G6 = DFF(G11)
        G7 = DFF(G13)
        G14 = NOT(G0)
        G8 = AND(G14, G6)
        G15 = OR(G12, G8)
        G16 = OR(G3, G8)
        G9 = NAND(G16, G15)
        G10 = NOR(G14, G11)
        G11 = OR(G5, G9)
        G12 = NOR(G1, G7)
        G13 = NAND(G2, G12)
        G17 = NOT(G11)
    ";

    #[test]
    fn parses_forward_references() {
        let nl = parse("s27ish", S27ISH).expect("parse");
        assert_eq!(nl.num_inputs(), 4);
        assert_eq!(nl.num_ffs(), 3);
        assert_eq!(nl.outputs().len(), 1);
        assert_eq!(nl.num_gates(), 10);
    }

    #[test]
    fn round_trip_preserves_structure() {
        let nl = parse("s27ish", S27ISH).expect("parse");
        let text = to_bench(&nl);
        let again = parse("s27ish", &text).expect("reparse");
        assert_eq!(again.stats(), nl.stats());
        assert_eq!(again.connected_ff_pairs(), nl.connected_ff_pairs());
        // names survive
        for (_, node) in nl.nodes() {
            assert!(again.find_node(node.name()).is_some(), "{}", node.name());
        }
    }

    #[test]
    fn case_insensitive_keywords_and_buf_spellings() {
        let nl = parse("c", "input(a)\noutput(y)\ny = buff(b)\nb = nand(a, a)\n").expect("parse");
        assert_eq!(nl.num_gates(), 2);
    }

    #[test]
    fn const_extension_round_trips() {
        let nl = parse("c", "OUTPUT(y)\none = CONST(1)\ny = BUFF(one)\n").expect("parse");
        let again = parse("c", &to_bench(&nl)).expect("reparse");
        assert_eq!(again.stats(), nl.stats());
    }

    #[test]
    fn undefined_signal_is_an_error() {
        let err = parse("bad", "OUTPUT(y)\ny = AND(a, b)\n").unwrap_err();
        assert!(err.message.contains("cannot resolve"), "{err}");
    }

    #[test]
    fn duplicate_definition_is_an_error() {
        let err = parse("bad", "INPUT(a)\na = NOT(a)\n").unwrap_err();
        assert!(err.message.contains("defined twice"), "{err}");
    }

    #[test]
    fn combinational_cycle_is_an_error() {
        let err = parse("bad", "OUTPUT(a)\na = NOT(b)\nb = NOT(a)\n").unwrap_err();
        assert!(
            err.message.contains("cyclic") || err.message.contains("cycle"),
            "{err}"
        );
    }

    #[test]
    fn dff_arity_is_checked() {
        let err = parse("bad", "INPUT(a)\nINPUT(b)\nq = DFF(a, b)\n").unwrap_err();
        assert!(err.message.contains("DFF takes one input"), "{err}");
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = parse("bad", "INPUT(a)\nwhat is this\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn parse_unchecked_accepts_what_parse_rejects() {
        // A combinational cycle: `parse` refuses, the permissive path
        // reconstructs it as written for mcp-lint to judge.
        let src = "OUTPUT(a)\na = NOT(b)\nb = NOT(a)\n";
        assert!(parse("bad", src).is_err());
        let nl = parse_unchecked("bad", src).expect("permissive parse");
        // Cyclic gates exist as nodes but are absent from the topological
        // order, so count raw nodes here.
        assert_eq!(nl.num_nodes(), 2);
        let a = nl.find_node("a").expect("a");
        let b = nl.find_node("b").expect("b");
        assert_eq!(nl.node(a).fanins(), &[b]);
        assert_eq!(nl.node(b).fanins(), &[a]);

        // An unconnected DFF stays unconnected instead of erroring.
        let nl = parse_unchecked("bad", "OUTPUT(q)\nq = DFF(ghost)\n").expect("parse");
        assert_eq!(nl.num_ffs(), 1);
        assert!(nl.node(nl.dffs()[0]).fanins().is_empty());

        // Truly undefined gate fanins are still hard errors.
        assert!(parse_unchecked("bad", "OUTPUT(g)\ng = NOT(ghost)\n").is_err());
    }

    #[test]
    fn parse_unchecked_matches_parse_on_well_formed_input() {
        let src = "
            INPUT(A)
            OUTPUT(Q)
            Q = DFF(D)
            D = XOR(Q, A)
        ";
        let strict = parse("t", src).expect("strict");
        let loose = parse_unchecked("t", src).expect("loose");
        assert_eq!(strict.stats(), loose.stats());
        assert_eq!(to_bench(&strict), to_bench(&loose));
    }
}
