//! Structural netlist diff for ECO-style incremental re-analysis.
//!
//! An engineering change order (ECO) edits a handful of gates in an
//! otherwise unchanged circuit. [`diff`] computes the name-keyed
//! structural delta between two netlists: the set of nodes that are new
//! or changed in the new revision, plus the nodes that disappeared.
//! Downstream, `mcp-core`'s ECO planner maps the changed names through
//! the sink-group cones of the new revision and re-verifies only the
//! groups whose cone of influence intersects the delta — every other
//! group's cached verdict is provably still valid, because an engine
//! verdict depends only on the group's cone (the slice/no-slice
//! identity) and every node of an untouched cone is name-and-structure
//! identical in both revisions.
//!
//! Nodes are matched **by name**: a node counts as changed when it is
//! absent from the old revision, its [`NodeKind`](crate::NodeKind)
//! differs, or its fanin *name* list differs (order-sensitive — gate
//! inputs are positional). A node present only in the old revision is
//! *removed*; removed nodes never appear in the new revision's cones, so
//! they only matter indirectly (whoever read them must have changed
//! fanins, landing in the changed set).

use crate::model::Netlist;
use std::collections::BTreeSet;

/// The name-keyed structural delta between two netlist revisions.
///
/// Produced by [`diff`]; all sets are sorted for deterministic
/// iteration and reporting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetlistDiff {
    /// Names of nodes that are new in — or structurally changed between
    /// — the two revisions, resolved against the *new* netlist.
    pub changed: BTreeSet<String>,
    /// Names of nodes present only in the *old* netlist.
    pub removed: BTreeSet<String>,
}

impl NetlistDiff {
    /// Whether the two revisions are structurally identical (same nodes
    /// by name, kind and fanin wiring).
    pub fn is_empty(&self) -> bool {
        self.changed.is_empty() && self.removed.is_empty()
    }

    /// Total number of touched names (changed + removed).
    pub fn touched(&self) -> usize {
        self.changed.len() + self.removed.len()
    }
}

/// Computes the structural delta from `old` to `new`.
///
/// `O(nodes × fanins)` with one hash lookup per node: each node of
/// `new` is matched by name against `old` and compared by kind and
/// ordered fanin names; each node of `old` missing from `new` is
/// recorded as removed. Output markings are ignored — they do not
/// affect FF-pair verdicts or their cones.
pub fn diff(old: &Netlist, new: &Netlist) -> NetlistDiff {
    let mut delta = NetlistDiff::default();
    for (_, node) in new.nodes() {
        let same = old.find_node(node.name()).is_some_and(|old_id| {
            let old_node = old.node(old_id);
            old_node.kind() == node.kind()
                && old_node.fanins().len() == node.fanins().len()
                && old_node
                    .fanins()
                    .iter()
                    .zip(node.fanins())
                    .all(|(&a, &b)| old.node(a).name() == new.node(b).name())
        });
        if !same {
            delta.changed.insert(node.name().to_owned());
        }
    }
    for (_, node) in old.nodes() {
        if new.find_node(node.name()).is_none() {
            delta.removed.insert(node.name().to_owned());
        }
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;

    const BASE: &str = "INPUT(a)\nINPUT(b)\nOUTPUT(q)\n\
                        q = DFF(g1)\ng1 = AND(a, b)";

    fn parse(name: &str, src: &str) -> Netlist {
        bench::parse(name, src).expect("parse")
    }

    #[test]
    fn identical_netlists_diff_empty() {
        let old = parse("c", BASE);
        let new = parse("c", BASE);
        let d = diff(&old, &new);
        assert!(d.is_empty());
        assert_eq!(d.touched(), 0);
    }

    #[test]
    fn gate_kind_change_is_detected() {
        let old = parse("c", BASE);
        let new = parse("c", &BASE.replace("AND(a, b)", "OR(a, b)"));
        let d = diff(&old, &new);
        assert_eq!(d.changed.iter().collect::<Vec<_>>(), ["g1"]);
        assert!(d.removed.is_empty());
        // Direction matters for resolution, not membership.
        assert_eq!(diff(&new, &old).changed, d.changed);
    }

    #[test]
    fn fanin_rewire_and_order_are_detected() {
        let old = parse("c", BASE);
        let rewired = parse("c", &BASE.replace("AND(a, b)", "AND(a, a)"));
        assert_eq!(
            diff(&old, &rewired).changed.iter().collect::<Vec<_>>(),
            ["g1"]
        );
        // Fanin order is positional, so a swap is a change.
        let swapped = parse("c", &BASE.replace("AND(a, b)", "AND(b, a)"));
        assert_eq!(
            diff(&old, &swapped).changed.iter().collect::<Vec<_>>(),
            ["g1"]
        );
    }

    #[test]
    fn added_and_removed_nodes_are_partitioned() {
        let old = parse("c", BASE);
        let new = parse(
            "c",
            "INPUT(a)\nINPUT(b)\nOUTPUT(q)\nOUTPUT(t)\n\
             q = DFF(g1)\ng1 = AND(a, b)\nt = NOT(a)",
        );
        let d = diff(&old, &new);
        assert_eq!(d.changed.iter().collect::<Vec<_>>(), ["t"]);
        assert!(d.removed.is_empty());
        let back = diff(&new, &old);
        assert!(back.changed.is_empty());
        assert_eq!(back.removed.iter().collect::<Vec<_>>(), ["t"]);
        assert_eq!(back.touched(), 1);
    }
}
