//! Netlist cleanup: constant propagation, buffer elision, structural
//! hashing and dead-logic removal.
//!
//! Real netlists (and synthesized `.bench` files) carry tied-off inputs,
//! redundant buffers and duplicated gates. [`sweep`] rewrites a circuit
//! into an equivalent, smaller one while **preserving the interface
//! exactly**: primary inputs, primary outputs and flip-flops keep their
//! names, order and indices, so analysis results (FF pairs!) remain
//! directly comparable before and after. The multi-cycle analysis is
//! function-driven, so sweeping first is pure speedup.

use crate::builder::NetlistBuilder;
use crate::model::{Netlist, NodeId, NodeKind};
use mcp_logic::GateKind;
use std::collections::HashMap;

/// Size accounting of a [`sweep`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepStats {
    /// Combinational gates before.
    pub gates_before: usize,
    /// Combinational gates after.
    pub gates_after: usize,
    /// Gates that folded to a constant.
    pub folded_constant: usize,
    /// Gates elided as (possibly inverted) wires.
    pub elided_wire: usize,
    /// Gates merged into a structurally identical earlier gate.
    pub merged_duplicate: usize,
    /// Live gates dropped because nothing observable reads them.
    pub dropped_dead: usize,
}

/// What an original node becomes in the swept netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Mapped {
    Const(bool),
    Node(NodeId),
}

/// Sweeps a netlist (see [module docs](self)).
///
/// Returns the simplified netlist and the accounting. The result is
/// behaviourally equivalent: for every input/state sequence, all FF
/// next-states and primary-output values coincide with the original's
/// (property-tested). The pass iterates internally until a fixpoint —
/// folding a gate can strand its fanins, which the next round removes.
pub fn sweep(netlist: &Netlist) -> (Netlist, SweepStats) {
    let (mut current, mut total) = sweep_once(netlist);
    loop {
        let (next, stats) = sweep_once(&current);
        if stats.gates_after == total.gates_after
            && stats.folded_constant == 0
            && stats.elided_wire == 0
            && stats.merged_duplicate == 0
            && stats.dropped_dead == 0
        {
            total.gates_after = next.num_gates();
            return (next, total);
        }
        total.folded_constant += stats.folded_constant;
        total.elided_wire += stats.elided_wire;
        total.merged_duplicate += stats.merged_duplicate;
        total.dropped_dead += stats.dropped_dead;
        total.gates_after = stats.gates_after;
        current = next;
    }
}

fn sweep_once(netlist: &Netlist) -> (Netlist, SweepStats) {
    let mut stats = SweepStats {
        gates_before: netlist.num_gates(),
        ..SweepStats::default()
    };

    // Liveness on the original: backward from POs and FF D inputs.
    let mut live = vec![false; netlist.num_nodes()];
    let mut stack: Vec<NodeId> = Vec::new();
    for &po in netlist.outputs() {
        if !live[po.index()] {
            live[po.index()] = true;
            stack.push(po);
        }
    }
    for k in 0..netlist.num_ffs() {
        let d = netlist.ff_d_input(k);
        if !live[d.index()] {
            live[d.index()] = true;
            stack.push(d);
        }
    }
    while let Some(n) = stack.pop() {
        if netlist.node(n).kind().is_gate() {
            for &f in netlist.node(n).fanins() {
                if !live[f.index()] {
                    live[f.index()] = true;
                    stack.push(f);
                }
            }
        }
    }

    let mut b = NetlistBuilder::new(netlist.name().to_owned());
    let mut map: Vec<Option<Mapped>> = vec![None; netlist.num_nodes()];
    let mut const_nodes: [Option<NodeId>; 2] = [None, None];
    let mut hash: HashMap<(GateKind, Vec<NodeId>), NodeId> = HashMap::new();

    // Interface first, preserving order and names.
    for &pi in netlist.inputs() {
        let id = b.input(netlist.node(pi).name().to_owned());
        map[pi.index()] = Some(Mapped::Node(id));
    }
    for &ff in netlist.dffs() {
        let id = b.dff(netlist.node(ff).name().to_owned());
        map[ff.index()] = Some(Mapped::Node(id));
    }
    for (id, node) in netlist.nodes() {
        if let NodeKind::Const(v) = node.kind() {
            map[id.index()] = Some(Mapped::Const(v));
        }
    }

    let mut materialize_const = |b: &mut NetlistBuilder, v: bool| -> NodeId {
        *const_nodes[usize::from(v)].get_or_insert_with(|| {
            let name = b.fresh_name(if v { "const1_" } else { "const0_" });
            b.constant(name, v)
        })
    };

    for &g in netlist.topo_gates() {
        if !live[g.index()] {
            stats.dropped_dead += 1;
            continue;
        }
        let node = netlist.node(g);
        let kind = node.kind().gate_kind().expect("topo holds gates");
        let ins: Vec<Mapped> = node
            .fanins()
            .iter()
            .map(|f| map[f.index()].expect("topo order resolves fanins"))
            .collect();
        let simplified = simplify_gate(kind, &ins);
        let mapped = match simplified {
            Simplified::Const(v) => {
                stats.folded_constant += 1;
                Mapped::Const(v)
            }
            Simplified::Wire(inner) => {
                stats.elided_wire += 1;
                inner
            }
            Simplified::Gate(kind, fanins) => {
                let real: Vec<NodeId> = fanins
                    .iter()
                    .map(|m| match *m {
                        Mapped::Node(n) => n,
                        Mapped::Const(v) => materialize_const(&mut b, v),
                    })
                    .collect();
                let key = (kind, real.clone());
                match hash.get(&key) {
                    Some(&existing) => {
                        stats.merged_duplicate += 1;
                        Mapped::Node(existing)
                    }
                    None => {
                        let id = b
                            .gate(node.name().to_owned(), kind, real)
                            .expect("arity preserved");
                        hash.insert(key, id);
                        Mapped::Node(id)
                    }
                }
            }
            Simplified::Inverter(inner) => {
                let real = match inner {
                    Mapped::Node(n) => n,
                    Mapped::Const(v) => materialize_const(&mut b, v),
                };
                let key = (GateKind::Not, vec![real]);
                match hash.get(&key) {
                    Some(&existing) => {
                        stats.merged_duplicate += 1;
                        Mapped::Node(existing)
                    }
                    None => {
                        let id = b
                            .gate(node.name().to_owned(), GateKind::Not, [real])
                            .expect("arity");
                        hash.insert(key, id);
                        Mapped::Node(id)
                    }
                }
            }
        };
        map[g.index()] = Some(mapped);
    }

    // Rewire FFs and POs.
    let mut to_node = |b: &mut NetlistBuilder, m: Mapped| -> NodeId {
        match m {
            Mapped::Node(n) => n,
            Mapped::Const(v) => materialize_const(b, v),
        }
    };
    for k in 0..netlist.num_ffs() {
        let ff_new = match map[netlist.dffs()[k].index()].expect("mapped") {
            Mapped::Node(n) => n,
            Mapped::Const(_) => unreachable!("FFs map to FFs"),
        };
        let d = map[netlist.ff_d_input(k).index()].expect("live by construction");
        let d = to_node(&mut b, d);
        b.set_dff_input(ff_new, d).expect("valid dff");
    }
    for &po in netlist.outputs() {
        let m = map[po.index()].expect("outputs are live");
        let n = to_node(&mut b, m);
        b.mark_output(n);
    }

    let swept = b.finish().expect("sweep preserves well-formedness");
    stats.gates_after = swept.num_gates();
    (swept, stats)
}

enum Simplified {
    Const(bool),
    /// Exactly some existing signal.
    Wire(Mapped),
    /// The complement of an existing signal.
    Inverter(Mapped),
    Gate(GateKind, Vec<Mapped>),
}

fn simplify_gate(kind: GateKind, ins: &[Mapped]) -> Simplified {
    match kind {
        GateKind::Buf => match ins[0] {
            Mapped::Const(v) => Simplified::Const(v),
            m => Simplified::Wire(m),
        },
        GateKind::Not => match ins[0] {
            Mapped::Const(v) => Simplified::Const(!v),
            m => Simplified::Inverter(m),
        },
        GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
            let c = kind.controlling_value().expect("and/or family");
            let inv = kind.output_inversion();
            let mut kept: Vec<Mapped> = Vec::with_capacity(ins.len());
            for &m in ins {
                match m {
                    Mapped::Const(v) if v == c => return Simplified::Const(c ^ inv),
                    Mapped::Const(_) => {} // non-controlling constant: drop
                    node => {
                        if !kept.contains(&node) {
                            kept.push(node); // idempotence: x AND x = x
                        }
                    }
                }
            }
            match kept.len() {
                0 => Simplified::Const(!c ^ inv), // all inputs non-controlling
                1 if !inv => Simplified::Wire(kept[0]),
                1 => Simplified::Inverter(kept[0]),
                _ => Simplified::Gate(base_of(kind), kept_with_inversion(kind, kept)),
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            let mut parity = kind.output_inversion();
            let mut kept: Vec<Mapped> = Vec::with_capacity(ins.len());
            for &m in ins {
                match m {
                    Mapped::Const(v) => parity ^= v,
                    node => {
                        // x XOR x = 0: cancel duplicate pairs.
                        if let Some(pos) = kept.iter().position(|&k| k == node) {
                            kept.swap_remove(pos);
                        } else {
                            kept.push(node);
                        }
                    }
                }
            }
            match kept.len() {
                0 => Simplified::Const(parity),
                1 if !parity => Simplified::Wire(kept[0]),
                1 => Simplified::Inverter(kept[0]),
                _ => {
                    if parity {
                        Simplified::Gate(GateKind::Xnor, kept)
                    } else {
                        Simplified::Gate(GateKind::Xor, kept)
                    }
                }
            }
        }
    }
}

/// For the AND/OR family the inversion is kept on the gate itself.
fn base_of(kind: GateKind) -> GateKind {
    kind
}

fn kept_with_inversion(_kind: GateKind, kept: Vec<Mapped>) -> Vec<Mapped> {
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;

    #[test]
    fn constants_fold_through_gates() {
        let nl = bench::parse(
            "c",
            "INPUT(a)\nOUTPUT(y)\nq = DFF(y)\n\
             one = CONST(1)\nzero = CONST(0)\n\
             g1 = AND(a, one)\n\
             g2 = OR(g1, zero)\n\
             g3 = XOR(g2, zero)\n\
             y = BUFF(g3)",
        )
        .expect("parse");
        let (swept, stats) = sweep(&nl);
        // Everything collapses to y = a: zero gates survive.
        assert_eq!(swept.num_gates(), 0);
        assert_eq!(stats.gates_before, 4);
        assert_eq!(swept.ff_d_input(0), swept.inputs()[0]);
    }

    #[test]
    fn controlling_constants_kill_cones() {
        let nl = bench::parse(
            "k",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nq = DFF(y)\n\
             zero = CONST(0)\n\
             big = AND(a, b, zero)\n\
             y = OR(big, a)",
        )
        .expect("parse");
        let (swept, stats) = sweep(&nl);
        assert!(stats.folded_constant >= 1);
        // y = OR(0, a) = a.
        assert_eq!(swept.ff_d_input(0), swept.inputs()[0]);
    }

    #[test]
    fn duplicates_merge() {
        let nl = bench::parse(
            "d",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nq = DFF(y)\n\
             g1 = AND(a, b)\n\
             g2 = AND(a, b)\n\
             y = XOR(g1, g2)",
        )
        .expect("parse");
        let (swept, stats) = sweep(&nl);
        assert_eq!(stats.merged_duplicate, 1);
        // XOR(g, g) = 0: the FF is fed a constant.
        assert_eq!(swept.num_gates(), 0, "{swept:?}");
    }

    #[test]
    fn dead_gates_drop_but_interface_survives() {
        let mut b = NetlistBuilder::new("dead");
        let a = b.input("a");
        let q = b.dff("q");
        let keep = b.gate("keep", GateKind::Not, [a]).unwrap();
        let _dead = b.gate("dead", GateKind::Nand, [a, q]).unwrap();
        b.set_dff_input(q, keep).unwrap();
        b.mark_output(q);
        let nl = b.finish().unwrap();
        let (swept, stats) = sweep(&nl);
        assert_eq!(stats.dropped_dead, 1);
        assert_eq!(swept.num_gates(), 1);
        assert_eq!(swept.num_inputs(), 1);
        assert_eq!(swept.num_ffs(), 1);
        assert_eq!(swept.node(swept.inputs()[0]).name(), "a");
        assert_eq!(swept.node(swept.dffs()[0]).name(), "q");
    }

    #[test]
    fn idempotent_inputs_collapse() {
        let nl =
            bench::parse("i", "INPUT(a)\nOUTPUT(y)\nq = DFF(y)\ny = AND(a, a, a)").expect("parse");
        let (swept, _) = sweep(&nl);
        // AND(a,a,a) = a.
        assert_eq!(swept.num_gates(), 0);
        assert_eq!(swept.ff_d_input(0), swept.inputs()[0]);
    }

    #[test]
    fn nand_of_single_survivor_becomes_inverter() {
        let nl = bench::parse(
            "n",
            "INPUT(a)\nOUTPUT(y)\nq = DFF(y)\none = CONST(1)\ny = NAND(a, one)",
        )
        .expect("parse");
        let (swept, stats) = sweep(&nl);
        assert_eq!(stats.gates_after, 1);
        let d = swept.ff_d_input(0);
        assert_eq!(swept.node(d).kind().gate_kind(), Some(GateKind::Not));
    }

    #[test]
    fn sweep_is_idempotent() {
        let nl = crate::bench::parse(
            "x",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nq = DFF(y)\n\
             one = CONST(1)\n\
             g1 = NAND(a, one)\ng2 = NOR(b, b)\ny = XNOR(g1, g2)",
        )
        .expect("parse");
        let (once, _) = sweep(&nl);
        let (twice, stats) = sweep(&once);
        assert_eq!(once.stats(), twice.stats());
        assert_eq!(stats.folded_constant, 0);
        assert_eq!(stats.elided_wire, 0);
        assert_eq!(stats.merged_duplicate, 0);
    }
}
