//! The immutable netlist model.

use mcp_logic::GateKind;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a node in a [`Netlist`] arena.
///
/// `NodeId`s are dense indices assigned in creation order; they are only
/// meaningful together with the netlist that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a `NodeId` from a dense index.
    ///
    /// Intended for serialization layers; an id built from a foreign index
    /// is only valid with a netlist that actually contains it.
    #[inline]
    pub fn from_index(index: usize) -> NodeId {
        NodeId(u32::try_from(index).expect("node index exceeds u32"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a netlist node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A primary input (no fanins).
    Input,
    /// A constant driver (no fanins).
    Const(bool),
    /// A combinational gate; fanins are its inputs in order.
    Gate(GateKind),
    /// A positive-edge D flip-flop; the single fanin is its D input.
    ///
    /// The node's *output* value is the FF state; at every clock edge the
    /// state is replaced by the value of the fanin.
    Dff,
}

impl NodeKind {
    /// Returns the gate function if this node is a combinational gate.
    #[inline]
    pub fn gate_kind(self) -> Option<GateKind> {
        match self {
            NodeKind::Gate(k) => Some(k),
            _ => None,
        }
    }

    /// Returns `true` for combinational gates.
    #[inline]
    pub fn is_gate(self) -> bool {
        matches!(self, NodeKind::Gate(_))
    }

    /// Returns `true` for flip-flops.
    #[inline]
    pub fn is_dff(self) -> bool {
        matches!(self, NodeKind::Dff)
    }
}

/// A single node of the netlist: its name, kind and fanin list.
#[derive(Debug, Clone)]
pub struct Node {
    pub(crate) name: String,
    pub(crate) kind: NodeKind,
    pub(crate) fanins: Vec<NodeId>,
}

impl Node {
    /// The node's user-visible name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node's kind.
    #[inline]
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// The node's fanins, in input order (for a DFF: `[d_input]`).
    #[inline]
    pub fn fanins(&self) -> &[NodeId] {
        &self.fanins
    }
}

/// Size summary of a netlist, as reported in the paper's Table 1 columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stats {
    /// Number of primary inputs (`In` column).
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of flip-flops (`FF` column).
    pub ffs: usize,
    /// Number of combinational gates.
    pub gates: usize,
    /// Number of topologically connected FF pairs (`FF-pair` column).
    pub ff_pairs: usize,
}

/// An immutable synchronous sequential circuit.
///
/// Built by [`NetlistBuilder`](crate::NetlistBuilder) or parsed from a
/// `.bench` file by [`bench::parse`](crate::bench::parse). Construction
/// precomputes fanouts, a topological order of the combinational gates and
/// per-node levels, so the analyses in the rest of the workspace never need
/// to re-derive them.
#[derive(Debug, Clone)]
pub struct Netlist {
    pub(crate) name: String,
    pub(crate) nodes: Vec<Node>,
    pub(crate) inputs: Vec<NodeId>,
    pub(crate) outputs: Vec<NodeId>,
    pub(crate) dffs: Vec<NodeId>,
    pub(crate) name_index: HashMap<String, NodeId>,
    pub(crate) fanouts: Vec<Vec<NodeId>>,
    /// Topological order over **combinational gates only** (inputs, consts
    /// and DFF outputs act as sources and are not listed).
    pub(crate) topo: Vec<NodeId>,
    /// Combinational level: 0 for sources, `1 + max(fanin levels)` for
    /// gates.
    pub(crate) level: Vec<u32>,
    /// Reverse map: node id of a DFF → its dense FF index.
    pub(crate) ff_index_of: HashMap<NodeId, usize>,
}

impl Netlist {
    /// The circuit name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of nodes (inputs + constants + gates + FFs).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of primary inputs.
    #[inline]
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of flip-flops.
    #[inline]
    pub fn num_ffs(&self) -> usize {
        self.dffs.len()
    }

    /// Number of combinational gates.
    pub fn num_gates(&self) -> usize {
        self.topo.len()
    }

    /// Access a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// All nodes in id order.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Primary input nodes, in declaration order.
    #[inline]
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary output nodes (the driver nodes marked as outputs).
    #[inline]
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Flip-flop nodes, in declaration order. The position of a node in
    /// this slice is its *FF index*, used throughout the workspace to
    /// identify FF pairs.
    #[inline]
    pub fn dffs(&self) -> &[NodeId] {
        &self.dffs
    }

    /// The FF index of a DFF node, if `id` is one.
    #[inline]
    pub fn ff_index(&self, id: NodeId) -> Option<usize> {
        self.ff_index_of.get(&id).copied()
    }

    /// The D-input driver of the FF with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `ff` is out of range.
    #[inline]
    pub fn ff_d_input(&self, ff: usize) -> NodeId {
        self.nodes[self.dffs[ff].index()].fanins[0]
    }

    /// Looks a node up by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.name_index.get(name).copied()
    }

    /// The nodes reading this node's output.
    #[inline]
    pub fn fanouts(&self, id: NodeId) -> &[NodeId] {
        &self.fanouts[id.index()]
    }

    /// Topological order over the combinational gates (sources excluded).
    /// Evaluating gates in this order visits every fanin before its reader.
    #[inline]
    pub fn topo_gates(&self) -> &[NodeId] {
        &self.topo
    }

    /// Combinational level of a node: 0 for inputs/constants/FF outputs,
    /// `1 + max(fanin level)` for gates.
    #[inline]
    pub fn level(&self, id: NodeId) -> u32 {
        self.level[id.index()]
    }

    /// Maximum combinational level (logic depth) of the circuit.
    pub fn depth(&self) -> u32 {
        self.level.iter().copied().max().unwrap_or(0)
    }

    /// Size summary, including the topological FF-pair count.
    pub fn stats(&self) -> Stats {
        Stats {
            inputs: self.inputs.len(),
            outputs: self.outputs.len(),
            ffs: self.dffs.len(),
            gates: self.topo.len(),
            ff_pairs: self.connected_ff_pairs().len(),
        }
    }

    /// Stable 64-bit content hash of the circuit (FNV-1a over the
    /// canonical BENCH serialization, which covers name, I/O, FFs, and
    /// every gate with its fanins in deterministic order). Two netlists
    /// hash equal iff they round-trip to the same BENCH text, making
    /// this the run-ledger identity check for `analyze --resume`.
    pub fn content_hash(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in crate::bench::to_bench(self).as_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    fn tiny() -> Netlist {
        // ff2.D = AND(ff1, in); ff1.D = NOT(ff1)
        let mut b = NetlistBuilder::new("tiny");
        let input = b.input("IN");
        let ff1 = b.dff("FF1");
        let ff2 = b.dff("FF2");
        let n = b.gate("N", GateKind::Not, [ff1]).unwrap();
        let a = b.gate("A", GateKind::And, [ff1, input]).unwrap();
        b.set_dff_input(ff1, n).unwrap();
        b.set_dff_input(ff2, a).unwrap();
        b.mark_output(ff2);
        b.finish().unwrap()
    }

    #[test]
    fn accessors_are_consistent() {
        let nl = tiny();
        assert_eq!(nl.name(), "tiny");
        assert_eq!(nl.num_inputs(), 1);
        assert_eq!(nl.num_ffs(), 2);
        assert_eq!(nl.num_gates(), 2);
        let ff1 = nl.find_node("FF1").unwrap();
        assert_eq!(nl.ff_index(ff1), Some(0));
        assert_eq!(nl.node(nl.ff_d_input(0)).name(), "N");
        assert_eq!(nl.node(nl.ff_d_input(1)).name(), "A");
    }

    #[test]
    fn levels_and_topo() {
        let nl = tiny();
        let ff1 = nl.find_node("FF1").unwrap();
        let a = nl.find_node("A").unwrap();
        assert_eq!(nl.level(ff1), 0);
        assert_eq!(nl.level(a), 1);
        assert_eq!(nl.depth(), 1);
        // topo contains exactly the gates
        assert_eq!(nl.topo_gates().len(), 2);
        for &g in nl.topo_gates() {
            assert!(nl.node(g).kind().is_gate());
        }
    }

    #[test]
    fn fanouts_are_reverse_of_fanins() {
        let nl = tiny();
        let ff1 = nl.find_node("FF1").unwrap();
        let mut readers: Vec<&str> = nl
            .fanouts(ff1)
            .iter()
            .map(|&id| nl.node(id).name())
            .collect();
        readers.sort_unstable();
        assert_eq!(readers, vec!["A", "N"]);
    }

    #[test]
    fn stats_count_pairs() {
        let nl = tiny();
        let s = nl.stats();
        assert_eq!(s.inputs, 1);
        assert_eq!(s.ffs, 2);
        assert_eq!(s.gates, 2);
        // FF1 feeds both its own D (via NOT) and FF2's D (via AND).
        assert_eq!(s.ff_pairs, 2);
    }

    #[test]
    fn content_hash_tracks_circuit_identity() {
        let nl = tiny();
        assert_eq!(nl.content_hash(), tiny().content_hash());
        // Same structure, different name: different identity.
        let mut b = NetlistBuilder::new("tiny2");
        let input = b.input("IN");
        let ff1 = b.dff("FF1");
        let ff2 = b.dff("FF2");
        let n = b.gate("N", GateKind::Not, [ff1]).unwrap();
        let a = b.gate("A", GateKind::And, [ff1, input]).unwrap();
        b.set_dff_input(ff1, n).unwrap();
        b.set_dff_input(ff2, a).unwrap();
        b.mark_output(ff2);
        let renamed = b.finish().unwrap();
        assert_ne!(nl.content_hash(), renamed.content_hash());
    }

    use mcp_logic::GateKind;
}
