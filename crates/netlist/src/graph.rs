//! Structural graph analyses over a [`Netlist`].
//!
//! These implement step 1 of the paper's flow — dropping FF pairs with no
//! combinational path between them — plus the cone computations the hazard
//! checker and the expansion need.

use crate::model::{Netlist, NodeId};
use std::collections::VecDeque;

impl Netlist {
    /// All ordered FF pairs `(i, j)` (by FF index) such that at least one
    /// combinational path leads from `FFi`'s output to `FFj`'s D input.
    ///
    /// This is the candidate set of the multi-cycle analysis: the paper's
    /// Table 1 `FF-pair` column. Self pairs `(i, i)` are included whenever
    /// the FF structurally feeds itself (e.g. hold multiplexers).
    ///
    /// Pairs are returned sorted by `(i, j)`.
    pub fn connected_ff_pairs(&self) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        for j in 0..self.num_ffs() {
            let (ff_sources, _) = self.ff_d_cone_sources(j);
            for i in ff_sources {
                pairs.push((i, j));
            }
        }
        pairs.sort_unstable();
        pairs
    }

    /// The source FFs and PIs in the combinational fan-in cone of the D
    /// input of FF `j`: `(ff_indices, pi_indices)`, each sorted.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn ff_d_cone_sources(&self, j: usize) -> (Vec<usize>, Vec<usize>) {
        self.cone_sources(self.ff_d_input(j))
    }

    /// The source FFs and PIs in the combinational fan-in cone of an
    /// arbitrary node: `(ff_indices, pi_indices)`, each sorted. The cone
    /// stops at the FF boundary (FF outputs are sources). If `d` itself is
    /// an FF or PI, the result is just that source.
    ///
    /// # Panics
    ///
    /// Panics if `d` does not belong to this netlist.
    pub fn cone_sources(&self, d: NodeId) -> (Vec<usize>, Vec<usize>) {
        let mut seen = vec![false; self.num_nodes()];
        let mut ffs = Vec::new();
        let mut pis = Vec::new();
        let mut queue = VecDeque::new();
        queue.push_back(d);
        seen[d.index()] = true;
        while let Some(id) = queue.pop_front() {
            let node = self.node(id);
            match node.kind() {
                crate::NodeKind::Dff => {
                    ffs.push(self.ff_index(id).expect("dff has ff index"));
                    // stop: the FF boundary is not crossed
                }
                crate::NodeKind::Input => {
                    let pi = self
                        .inputs()
                        .iter()
                        .position(|&p| p == id)
                        .expect("input registered");
                    pis.push(pi);
                }
                crate::NodeKind::Const(_) => {}
                crate::NodeKind::Gate(_) => {
                    for &f in node.fanins() {
                        if !seen[f.index()] {
                            seen[f.index()] = true;
                            queue.push_back(f);
                        }
                    }
                }
            }
        }
        ffs.sort_unstable();
        pis.sort_unstable();
        (ffs, pis)
    }

    /// The set of nodes lying on at least one combinational path from the
    /// output of FF `i` to the D input of FF `j` — i.e. the intersection of
    /// the forward-reachable set of `FFi` and the backward-reachable set of
    /// `FFj`'s D input, both restricted to combinational gates (plus the
    /// two endpoints).
    ///
    /// Returns an empty vector when no path exists. The result contains the
    /// source FF node and, when it lies on a path, the D-input driver node.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn path_cone(&self, i: usize, j: usize) -> Vec<NodeId> {
        let src = self.dffs()[i];
        let dst = self.ff_d_input(j);

        // Forward reachability from src through gates.
        let mut fwd = vec![false; self.num_nodes()];
        let mut queue = VecDeque::new();
        fwd[src.index()] = true;
        queue.push_back(src);
        while let Some(id) = queue.pop_front() {
            for &out in self.fanouts(id) {
                if self.node(out).kind().is_gate() && !fwd[out.index()] {
                    fwd[out.index()] = true;
                    queue.push_back(out);
                }
            }
        }
        if !fwd[dst.index()] {
            return Vec::new();
        }

        // Backward reachability from dst through gates (and the source FF).
        let mut bwd = vec![false; self.num_nodes()];
        bwd[dst.index()] = true;
        queue.push_back(dst);
        while let Some(id) = queue.pop_front() {
            if !self.node(id).kind().is_gate() {
                // FF outputs, PIs and constants end the combinational cone.
                continue;
            }
            for &f in self.node(id).fanins() {
                let k = self.node(f).kind();
                if (k.is_gate() || f == src) && !bwd[f.index()] {
                    bwd[f.index()] = true;
                    queue.push_back(f);
                }
            }
        }

        (0..self.num_nodes())
            .filter(|&n| fwd[n] && bwd[n])
            .map(NodeId::from_index)
            .collect()
    }

    /// Whether any combinational path connects FF `i`'s output to FF `j`'s
    /// D input.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn ffs_connected(&self, i: usize, j: usize) -> bool {
        let src = self.dffs()[i];
        let dst = self.ff_d_input(j);
        if src == dst {
            return true;
        }
        // BFS from the source FF output, moving only through combinational
        // gates; the pair is connected iff the D driver is reached.
        let mut seen = vec![false; self.num_nodes()];
        let mut queue = VecDeque::new();
        seen[src.index()] = true;
        queue.push_back(src);
        while let Some(id) = queue.pop_front() {
            for &out in self.fanouts(id) {
                if self.node(out).kind().is_gate() && !seen[out.index()] {
                    if out == dst {
                        return true;
                    }
                    seen[out.index()] = true;
                    queue.push_back(out);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use crate::NetlistBuilder;
    use mcp_logic::GateKind;

    /// Two FFs in a pipeline with an enable, one isolated FF.
    fn pipeline() -> crate::Netlist {
        let mut b = NetlistBuilder::new("pipe");
        let en = b.input("EN");
        let a = b.dff("A");
        let q = b.dff("B");
        let iso = b.dff("ISO");
        let g = b.gate("G", GateKind::And, [a, en]).unwrap();
        b.set_dff_input(q, g).unwrap();
        let na = b.gate("NA", GateKind::Not, [a]).unwrap();
        b.set_dff_input(a, na).unwrap();
        let niso = b.gate("NISO", GateKind::Not, [iso]).unwrap();
        b.set_dff_input(iso, niso).unwrap();
        b.mark_output(q);
        b.finish().unwrap()
    }

    #[test]
    fn connected_pairs_enumerates_structural_paths() {
        let nl = pipeline();
        // A feeds itself (NOT loop) and B (AND); ISO feeds only itself.
        assert_eq!(nl.connected_ff_pairs(), vec![(0, 0), (0, 1), (2, 2)]);
    }

    #[test]
    fn cone_sources_include_pis() {
        let nl = pipeline();
        let (ffs, pis) = nl.ff_d_cone_sources(1);
        assert_eq!(ffs, vec![0]);
        assert_eq!(pis, vec![0]);
        let (ffs, pis) = nl.ff_d_cone_sources(0);
        assert_eq!(ffs, vec![0]);
        assert!(pis.is_empty());
    }

    #[test]
    fn path_cone_is_empty_for_unconnected_pairs() {
        let nl = pipeline();
        assert!(nl.path_cone(2, 1).is_empty());
        assert!(nl.path_cone(0, 2).is_empty());
        let cone = nl.path_cone(0, 1);
        let names: Vec<&str> = cone.iter().map(|&n| nl.node(n).name()).collect();
        assert!(names.contains(&"A"));
        assert!(names.contains(&"G"));
        assert!(!names.contains(&"EN"));
    }

    #[test]
    fn ffs_connected_matches_pairs() {
        let nl = pipeline();
        assert!(nl.ffs_connected(0, 0));
        assert!(nl.ffs_connected(0, 1));
        assert!(!nl.ffs_connected(1, 0));
        assert!(!nl.ffs_connected(1, 1));
        assert!(nl.ffs_connected(2, 2));
    }

    #[test]
    fn direct_ff_to_ff_connection_is_detected() {
        // B.D = A directly (no gate in between).
        let mut b = NetlistBuilder::new("direct");
        let a = b.dff("A");
        let q = b.dff("B");
        b.set_dff_input(q, a).unwrap();
        let na = b.gate("NA", GateKind::Not, [a]).unwrap();
        b.set_dff_input(a, na).unwrap();
        let nl = b.finish().unwrap();
        assert!(nl.ffs_connected(0, 1));
        assert_eq!(nl.connected_ff_pairs(), vec![(0, 0), (0, 1)]);
        let cone = nl.path_cone(0, 1);
        assert_eq!(cone.len(), 1); // just the source FF node
    }
}
