//! Time-frame expansion of a sequential circuit.
//!
//! The multi-cycle condition `FFi(t) != FFi(t+1)  ⇒  FFj(t+1) == FFj(t+2)`
//! talks about flip-flop values at three consecutive clock ticks. To reason
//! about it combinationally, the logic part is *expanded* into `F` copies
//! ("frames"): frame `f` computes the circuit's combinational functions of
//! the FF state at time `t+f` and the primary inputs at time `t+f`. The FF
//! state at time `t+f+1` is, by the D-FF semantics, the D-input value
//! computed inside frame `f`.
//!
//! The resulting [`Expanded`] model is a plain combinational DAG over free
//! variables — initial FF state plus per-frame primary inputs — shared by
//! the implication engine, the ATPG search and the SAT encoder, which
//! guarantees all three answer exactly the same question.

use crate::model::{Netlist, NodeId, NodeKind};
use mcp_logic::{GateKind, V3};
use std::fmt;

/// Identifier of a node in an [`Expanded`] model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct XId(u32);

impl XId {
    /// Dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for XId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Where a free variable of the expanded model comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarOrigin {
    /// Primary input `pi` (by input index) during frame `frame`.
    Pi {
        /// Frame index in `0..frames`.
        frame: u32,
        /// Primary-input index.
        pi: u32,
    },
    /// The state of flip-flop `ff` (by FF index) at time `t` (frame 0).
    ///
    /// Following the paper (and the SAT baseline \[9\]), the initial state is
    /// unconstrained: every state is assumed reachable.
    InitialState {
        /// Flip-flop index.
        ff: u32,
    },
}

/// A node of the expanded combinational model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XKind {
    /// A free variable (pseudo primary input).
    Var(VarOrigin),
    /// A constant.
    Const(bool),
    /// A combinational gate.
    Gate(GateKind),
}

/// One node of the expanded model: kind plus fanins.
#[derive(Debug, Clone)]
pub struct XNode {
    kind: XKind,
    fanins: Vec<XId>,
    /// The original netlist node this expansion copy computes, with its
    /// frame — `None` for free variables that stand for FF initial state.
    origin: Option<(u32, NodeId)>,
}

impl XNode {
    /// The node kind.
    #[inline]
    pub fn kind(&self) -> XKind {
        self.kind
    }

    /// Fanins in input order (empty for variables and constants).
    #[inline]
    pub fn fanins(&self) -> &[XId] {
        &self.fanins
    }

    /// The `(frame, original node)` this copy computes, when applicable.
    #[inline]
    pub fn origin(&self) -> Option<(u32, NodeId)> {
        self.origin
    }
}

/// A sequential circuit expanded into `F` combinational time frames.
///
/// # Example
///
/// ```
/// use mcp_netlist::{Expanded, NetlistBuilder};
/// use mcp_logic::GateKind;
///
/// let mut b = NetlistBuilder::new("toggle");
/// let q = b.dff("Q");
/// let d = b.gate("D", GateKind::Not, [q])?;
/// b.set_dff_input(q, d)?;
/// let netlist = b.finish()?;
///
/// let x = Expanded::build(&netlist, 2);
/// // Q at time t is a free variable; Q at t+1 and t+2 are gate outputs.
/// assert_ne!(x.ff_at(0, 0), x.ff_at(0, 1));
/// assert_ne!(x.ff_at(0, 1), x.ff_at(0, 2));
/// # Ok::<(), mcp_netlist::BuildError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Expanded {
    nodes: Vec<XNode>,
    frames: u32,
    num_pis: usize,
    num_ffs: usize,
    /// `value_in_frame[f][orig.index()]`: the expanded node computing the
    /// original node's value during frame `f`.
    value_in_frame: Vec<Vec<XId>>,
    /// D-input node id per FF in the original netlist (cached).
    d_inputs: Vec<NodeId>,
    fanouts: Vec<Vec<XId>>,
    /// All gate nodes in topological order.
    topo: Vec<XId>,
    /// All free variables.
    vars: Vec<XId>,
    /// `pi_vars[f * num_pis + pi]`: the variable for PI `pi` in frame `f`.
    pi_vars: Vec<XId>,
    /// `state_vars[ff]`: the initial-state variable of FF `ff`.
    state_vars: Vec<XId>,
    level: Vec<u32>,
}

impl Expanded {
    /// Expands `netlist` into `frames` combinational frames (`frames ≥ 1`).
    ///
    /// With `F` frames, FF values at times `t ..= t+F` are available via
    /// [`ff_at`](Self::ff_at) — the paper's 2-frame expansion (`F = 2`)
    /// exposes `FF(t)`, `FF(t+1)`, `FF(t+2)`.
    ///
    /// # Panics
    ///
    /// Panics if `frames == 0`.
    pub fn build(netlist: &Netlist, frames: u32) -> Expanded {
        assert!(frames >= 1, "expansion needs at least one frame");
        let n = netlist.num_nodes();
        let mut nodes: Vec<XNode> = Vec::with_capacity(n * frames as usize);
        let mut vars = Vec::new();
        let mut pi_vars = Vec::new();
        let mut state_vars = Vec::new();
        let mut value_in_frame: Vec<Vec<XId>> = Vec::with_capacity(frames as usize);

        let push = |nodes: &mut Vec<XNode>, node: XNode| -> XId {
            let id = XId(nodes.len() as u32);
            nodes.push(node);
            id
        };

        let d_inputs: Vec<NodeId> = (0..netlist.num_ffs())
            .map(|k| netlist.ff_d_input(k))
            .collect();

        const UNSET: XId = XId(u32::MAX);
        for f in 0..frames {
            let mut map = vec![UNSET; n];
            // Sources first: PIs are fresh variables each frame; FF outputs
            // are fresh variables in frame 0 and aliases of the previous
            // frame's D-input values afterwards; constants are shared per
            // frame (cheap enough).
            for (pi_idx, &pi) in netlist.inputs().iter().enumerate() {
                let id = push(
                    &mut nodes,
                    XNode {
                        kind: XKind::Var(VarOrigin::Pi {
                            frame: f,
                            pi: pi_idx as u32,
                        }),
                        fanins: Vec::new(),
                        origin: Some((f, pi)),
                    },
                );
                vars.push(id);
                pi_vars.push(id);
                map[pi.index()] = id;
            }
            for (ff_idx, &ff) in netlist.dffs().iter().enumerate() {
                if f == 0 {
                    let id = push(
                        &mut nodes,
                        XNode {
                            kind: XKind::Var(VarOrigin::InitialState { ff: ff_idx as u32 }),
                            fanins: Vec::new(),
                            origin: Some((0, ff)),
                        },
                    );
                    vars.push(id);
                    state_vars.push(id);
                    map[ff.index()] = id;
                } else {
                    // Alias: FF output in frame f = D input value in f-1.
                    map[ff.index()] = value_in_frame[f as usize - 1][d_inputs[ff_idx].index()];
                }
            }
            for (id, node) in netlist.nodes() {
                if let NodeKind::Const(v) = node.kind() {
                    let x = push(
                        &mut nodes,
                        XNode {
                            kind: XKind::Const(v),
                            fanins: Vec::new(),
                            origin: Some((f, id)),
                        },
                    );
                    map[id.index()] = x;
                }
            }
            for &g in netlist.topo_gates() {
                let node = netlist.node(g);
                let kind = node.kind().gate_kind().expect("topo contains gates");
                let fanins: Vec<XId> = node.fanins().iter().map(|x| map[x.index()]).collect();
                debug_assert!(fanins.iter().all(|&x| x != UNSET));
                let x = push(
                    &mut nodes,
                    XNode {
                        kind: XKind::Gate(kind),
                        fanins,
                        origin: Some((f, g)),
                    },
                );
                map[g.index()] = x;
            }
            value_in_frame.push(map);
        }

        let mut fanouts: Vec<Vec<XId>> = vec![Vec::new(); nodes.len()];
        let mut topo = Vec::new();
        let mut level = vec![0u32; nodes.len()];
        for (i, node) in nodes.iter().enumerate() {
            let id = XId(i as u32);
            if matches!(node.kind, XKind::Gate(_)) {
                topo.push(id); // creation order is topological
                level[i] = 1 + node
                    .fanins
                    .iter()
                    .map(|f| level[f.index()])
                    .max()
                    .unwrap_or(0);
            }
            for &f in &node.fanins {
                fanouts[f.index()].push(id);
            }
        }

        Expanded {
            nodes,
            frames,
            num_pis: netlist.num_inputs(),
            num_ffs: netlist.num_ffs(),
            value_in_frame,
            d_inputs,
            fanouts,
            topo,
            vars,
            pi_vars,
            state_vars,
            level,
        }
    }

    /// Number of frames `F` in the expansion.
    #[inline]
    pub fn frames(&self) -> u32 {
        self.frames
    }

    /// Number of nodes in the expanded model.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of flip-flops in the underlying netlist.
    #[inline]
    pub fn num_ffs(&self) -> usize {
        self.num_ffs
    }

    /// Number of primary inputs in the underlying netlist.
    #[inline]
    pub fn num_pis(&self) -> usize {
        self.num_pis
    }

    /// Access a node.
    #[inline]
    pub fn node(&self, id: XId) -> &XNode {
        &self.nodes[id.index()]
    }

    /// All nodes in id order (which is topological).
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = (XId, &XNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (XId(i as u32), n))
    }

    /// The expanded node giving the value of flip-flop `ff` at time `t +
    /// time` (`time ≤ frames`).
    ///
    /// `time == 0` is the free initial-state variable; `time == k ≥ 1` is
    /// the FF's D-input value computed in frame `k-1`.
    ///
    /// # Panics
    ///
    /// Panics if `ff` or `time` is out of range.
    pub fn ff_at(&self, ff: usize, time: u32) -> XId {
        assert!(
            time <= self.frames,
            "time {time} exceeds frames {}",
            self.frames
        );
        if time == 0 {
            self.state_vars[ff]
        } else {
            self.value_in_frame[time as usize - 1][self.d_inputs[ff].index()]
        }
    }

    /// The expanded node giving the value of primary input `pi` during
    /// frame `frame`.
    ///
    /// # Panics
    ///
    /// Panics if `pi` or `frame` is out of range.
    pub fn pi_at(&self, pi: usize, frame: u32) -> XId {
        assert!(frame < self.frames && pi < self.num_pis);
        self.pi_vars[frame as usize * self.num_pis + pi]
    }

    /// The expanded node computing original node `orig` during frame
    /// `frame`.
    ///
    /// For a DFF node this is its *output* value during that frame (the
    /// state at time `t+frame`).
    ///
    /// # Panics
    ///
    /// Panics if `frame` is out of range.
    #[inline]
    pub fn value_of(&self, frame: u32, orig: NodeId) -> XId {
        self.value_in_frame[frame as usize][orig.index()]
    }

    /// Readers of a node.
    #[inline]
    pub fn fanouts(&self, id: XId) -> &[XId] {
        &self.fanouts[id.index()]
    }

    /// Gate nodes in topological order.
    #[inline]
    pub fn topo_gates(&self) -> &[XId] {
        &self.topo
    }

    /// All free variables (per-frame PIs then initial FF state for frame 0,
    /// then later frames' PIs).
    #[inline]
    pub fn vars(&self) -> &[XId] {
        &self.vars
    }

    /// Structural level (0 for variables/constants).
    #[inline]
    pub fn level(&self, id: XId) -> u32 {
        self.level[id.index()]
    }

    /// Evaluates the whole model over the ternary domain given an
    /// assignment to (some of) the free variables.
    ///
    /// Mostly a reference implementation for tests and for witness
    /// verification: returns the value of every node, computed in
    /// topological order with [`GateKind::eval_v3`].
    pub fn eval_v3(&self, var_values: &[(XId, V3)]) -> Vec<V3> {
        let mut val = vec![V3::X; self.nodes.len()];
        for &(id, v) in var_values {
            val[id.index()] = v;
        }
        for (i, node) in self.nodes.iter().enumerate() {
            match node.kind {
                XKind::Const(b) => val[i] = V3::from(b),
                XKind::Gate(kind) => {
                    val[i] = kind.eval_v3(node.fanins.iter().map(|f| val[f.index()]));
                }
                XKind::Var(_) => {}
            }
        }
        val
    }

    /// The fanin closure (cone of influence) of `roots`, as an ascending
    /// list of node ids. Ascending id order is topological, so the cone is
    /// directly usable as a dense sub-model node order.
    pub fn cone_of(&self, roots: &[XId]) -> Vec<XId> {
        let mut in_cone = vec![false; self.nodes.len()];
        let mut stack: Vec<XId> = Vec::new();
        for &r in roots {
            if !in_cone[r.index()] {
                in_cone[r.index()] = true;
                stack.push(r);
            }
        }
        while let Some(id) = stack.pop() {
            for &f in &self.nodes[id.index()].fanins {
                if !in_cone[f.index()] {
                    in_cone[f.index()] = true;
                    stack.push(f);
                }
            }
        }
        (0..self.nodes.len())
            .filter(|&i| in_cone[i])
            .map(|i| XId(i as u32))
            .collect()
    }

    /// Builds the cone-of-influence [`Slice`] rooted at `roots`: a dense
    /// sub-model containing exactly [`cone_of`](Self::cone_of)`(roots)`,
    /// renumbered in ascending (hence still topological) order.
    ///
    /// The slice's nested [`Expanded`] keeps the *original* netlist's FF
    /// and PI indexing — [`ff_at`](Self::ff_at), [`pi_at`](Self::pi_at)
    /// and [`value_of`](Self::value_of) answer with slice-local ids for
    /// any node inside the cone, so every engine built against `Expanded`
    /// runs on a slice unchanged. Asking for a node *outside* the cone
    /// returns an unmapped sentinel and will panic on use; callers scope
    /// their queries to the roots they sliced for.
    pub fn build_slice(&self, roots: &[XId]) -> Slice {
        const UNSET: XId = XId(u32::MAX);
        let from_slice = self.cone_of(roots);
        let mut to_slice = vec![UNSET; self.nodes.len()];
        for (si, &wid) in from_slice.iter().enumerate() {
            to_slice[wid.index()] = XId(si as u32);
        }
        let remap = |id: XId| to_slice[id.index()];

        // Dense nodes with remapped fanins: ascending whole-id order means
        // every fanin of an in-cone gate is already mapped (fanin closure).
        let nodes: Vec<XNode> = from_slice
            .iter()
            .map(|&wid| {
                let w = &self.nodes[wid.index()];
                XNode {
                    kind: w.kind,
                    fanins: w.fanins.iter().map(|&f| remap(f)).collect(),
                    origin: w.origin,
                }
            })
            .collect();

        // Full-width lookup maps with UNSET holes for out-of-cone entries,
        // so original frame/FF/PI indices keep working.
        let value_in_frame: Vec<Vec<XId>> = self
            .value_in_frame
            .iter()
            .map(|frame_map| {
                frame_map
                    .iter()
                    .map(|&x| if x == UNSET { UNSET } else { remap(x) })
                    .collect()
            })
            .collect();
        let state_vars: Vec<XId> = self.state_vars.iter().map(|&x| remap(x)).collect();
        let pi_vars: Vec<XId> = self.pi_vars.iter().map(|&x| remap(x)).collect();

        // In-cone free variables in canonical (ascending) order.
        let vars: Vec<XId> = self
            .vars
            .iter()
            .filter(|&&x| to_slice[x.index()] != UNSET)
            .map(|&x| remap(x))
            .collect();

        let mut fanouts: Vec<Vec<XId>> = vec![Vec::new(); nodes.len()];
        let mut topo = Vec::new();
        let mut level = vec![0u32; nodes.len()];
        for (i, node) in nodes.iter().enumerate() {
            let id = XId(i as u32);
            if matches!(node.kind, XKind::Gate(_)) {
                topo.push(id);
                level[i] = 1 + node
                    .fanins
                    .iter()
                    .map(|f| level[f.index()])
                    .max()
                    .unwrap_or(0);
            }
            for &f in &node.fanins {
                fanouts[f.index()].push(id);
            }
        }

        Slice {
            model: Expanded {
                nodes,
                frames: self.frames,
                num_pis: self.num_pis,
                num_ffs: self.num_ffs,
                value_in_frame,
                d_inputs: self.d_inputs.clone(),
                fanouts,
                topo,
                vars,
                pi_vars,
                state_vars,
                level,
            },
            from_slice,
        }
    }
}

/// A cone-of-influence slice of an [`Expanded`] model.
///
/// Built by [`Expanded::build_slice`]: the fanin closure of a set of root
/// nodes (typically the FF-transition nodes of one sink group's multi-cycle
/// query), densely renumbered so per-pair engine work is O(|cone|) instead
/// of O(|circuit|). The nested [`model`](Self::model) is a genuine
/// [`Expanded`] — implication, ATPG and SAT engines consume it unchanged —
/// and [`to_whole`](Self::to_whole)/[`to_slice`](Self::to_slice) translate
/// between slice-local and whole-model ids (each slice node also keeps its
/// `(frame, NodeId)` origin).
#[derive(Debug, Clone)]
pub struct Slice {
    model: Expanded,
    /// `from_slice[slice_id] = whole_id`, ascending.
    from_slice: Vec<XId>,
}

impl Slice {
    /// The dense sliced model.
    #[inline]
    pub fn model(&self) -> &Expanded {
        &self.model
    }

    /// Number of nodes in the slice.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.model.nodes.len()
    }

    /// Number of free variables inside the cone.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.model.vars.len()
    }

    /// The whole-model id a slice node came from.
    #[inline]
    pub fn to_whole(&self, slice_id: XId) -> XId {
        self.from_slice[slice_id.index()]
    }

    /// The slice id of a whole-model node, if it is inside the cone.
    ///
    /// O(log n) — ids are kept sorted rather than carrying a full-width
    /// reverse map per slice.
    pub fn to_slice(&self, whole_id: XId) -> Option<XId> {
        self.from_slice
            .binary_search(&whole_id)
            .ok()
            .map(|i| XId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    /// q1 toggles; q2.D = AND(q1, in).
    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new("sample");
        let input = b.input("IN");
        let q1 = b.dff("Q1");
        let q2 = b.dff("Q2");
        let n = b.gate("N", GateKind::Not, [q1]).unwrap();
        let a = b.gate("A", GateKind::And, [q1, input]).unwrap();
        b.set_dff_input(q1, n).unwrap();
        b.set_dff_input(q2, a).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn sizes_scale_with_frames() {
        let nl = sample();
        let x1 = Expanded::build(&nl, 1);
        let x3 = Expanded::build(&nl, 3);
        // per frame: 1 PI var + 2 gates; frame 0 additionally 2 state vars
        assert_eq!(x1.num_nodes(), 1 + 2 + 2);
        assert_eq!(x3.num_nodes(), 2 + 3 * (1 + 2));
        assert_eq!(x3.vars().len(), 2 + 3);
        assert_eq!(x3.topo_gates().len(), 6);
    }

    #[test]
    fn ff_at_aliases_previous_frame_d_input() {
        let nl = sample();
        let x = Expanded::build(&nl, 2);
        let q1 = nl.find_node("Q1").unwrap();
        let n = nl.find_node("N").unwrap();
        // Q1 at time 1 is N evaluated in frame 0, which is also Q1's value
        // during frame 1.
        assert_eq!(x.ff_at(0, 1), x.value_of(0, n));
        assert_eq!(x.ff_at(0, 1), x.value_of(1, q1));
        // Q1 at time 2 is N in frame 1.
        assert_eq!(x.ff_at(0, 2), x.value_of(1, n));
    }

    #[test]
    fn eval_v3_computes_sequential_semantics() {
        let nl = sample();
        let x = Expanded::build(&nl, 2);
        // Q1(t)=1, Q2(t)=0, IN(t)=1, IN(t+1)=1.
        let assign = vec![
            (x.ff_at(0, 0), V3::One),
            (x.ff_at(1, 0), V3::Zero),
            (x.pi_at(0, 0), V3::One),
            (x.pi_at(0, 1), V3::One),
        ];
        let val = x.eval_v3(&assign);
        // Q1 toggles: 1 -> 0 -> 1. Q2(t+1) = AND(Q1(t), IN(t)) = 1;
        // Q2(t+2) = AND(Q1(t+1), IN(t+1)) = 0.
        assert_eq!(val[x.ff_at(0, 1).index()], V3::Zero);
        assert_eq!(val[x.ff_at(0, 2).index()], V3::One);
        assert_eq!(val[x.ff_at(1, 1).index()], V3::One);
        assert_eq!(val[x.ff_at(1, 2).index()], V3::Zero);
    }

    #[test]
    fn pi_at_finds_each_frame_variable() {
        let nl = sample();
        let x = Expanded::build(&nl, 3);
        for f in 0..3 {
            let id = x.pi_at(0, f);
            match x.node(id).kind() {
                XKind::Var(VarOrigin::Pi { frame, pi }) => {
                    assert_eq!(frame, f);
                    assert_eq!(pi, 0);
                }
                other => panic!("expected PI var, got {other:?}"),
            }
        }
    }

    #[test]
    fn origins_point_back_to_netlist() {
        let nl = sample();
        let x = Expanded::build(&nl, 2);
        let a = nl.find_node("A").unwrap();
        for f in 0..2 {
            let xa = x.value_of(f, a);
            assert_eq!(x.node(xa).origin(), Some((f, a)));
        }
    }

    #[test]
    fn slice_restricts_the_model_to_the_cone() {
        let nl = sample();
        let x = Expanded::build(&nl, 2);
        // Cone of Q1's self pair: the toggle loop only — IN and the AND
        // gate feeding Q2 are outside it.
        let roots = vec![x.ff_at(0, 0), x.ff_at(0, 1), x.ff_at(0, 2)];
        let s = x.build_slice(&roots);
        // Q1(t) var + NOT per frame = 3 nodes; the whole model has 8.
        assert_eq!(s.num_nodes(), 3);
        assert_eq!(s.num_vars(), 1);
        assert!(s.num_nodes() < x.num_nodes());
        // FF indexing survives: the slice answers ff_at with its own ids.
        let sm = s.model();
        assert_eq!(sm.frames(), 2);
        for t in 0..=2 {
            let sid = sm.ff_at(0, t);
            assert_eq!(s.to_whole(sid), x.ff_at(0, t));
            assert_eq!(s.to_slice(x.ff_at(0, t)), Some(sid));
        }
        // Structure, origin and level match the whole model in-cone.
        for (sid, node) in sm.nodes() {
            let wid = s.to_whole(sid);
            let w = x.node(wid);
            assert_eq!(node.kind(), w.kind());
            assert_eq!(node.origin(), w.origin());
            assert_eq!(sm.level(sid), x.level(wid));
            let wf: Vec<XId> = node.fanins().iter().map(|&f| s.to_whole(f)).collect();
            assert_eq!(wf, w.fanins());
        }
    }

    #[test]
    fn slice_evaluation_matches_the_whole_model() {
        let nl = sample();
        let x = Expanded::build(&nl, 2);
        // Slice for the (Q1 -> Q2) pair: Q1 transition at t, Q2 at t+1.
        let roots = vec![x.ff_at(0, 0), x.ff_at(0, 1), x.ff_at(1, 1), x.ff_at(1, 2)];
        let s = x.build_slice(&roots);
        let sm = s.model();
        for a in 0u32..16 {
            let bit = |k: u32| V3::from(a >> k & 1 == 1);
            let whole = x.eval_v3(&[
                (x.ff_at(0, 0), bit(0)),
                (x.ff_at(1, 0), bit(1)),
                (x.pi_at(0, 0), bit(2)),
                (x.pi_at(0, 1), bit(3)),
            ]);
            let sliced_assign: Vec<_> = [
                (x.ff_at(0, 0), bit(0)),
                (x.ff_at(1, 0), bit(1)),
                (x.pi_at(0, 0), bit(2)),
                (x.pi_at(0, 1), bit(3)),
            ]
            .iter()
            .filter_map(|&(wid, v)| s.to_slice(wid).map(|sid| (sid, v)))
            .collect();
            let sliced = sm.eval_v3(&sliced_assign);
            for (sid, _) in sm.nodes() {
                assert_eq!(sliced[sid.index()], whole[s.to_whole(sid).index()]);
            }
        }
    }

    #[test]
    fn cone_of_is_fanin_closed_and_sorted() {
        let nl = sample();
        let x = Expanded::build(&nl, 3);
        let cone = x.cone_of(&[x.ff_at(1, 3)]);
        assert!(cone.windows(2).all(|w| w[0] < w[1]));
        for &id in &cone {
            for &f in x.node(id).fanins() {
                assert!(cone.binary_search(&f).is_ok(), "cone not fanin-closed");
            }
        }
    }

    #[test]
    fn fanouts_are_consistent() {
        let nl = sample();
        let x = Expanded::build(&nl, 2);
        for (id, node) in x.nodes() {
            for &f in node.fanins() {
                assert!(x.fanouts(f).contains(&id));
            }
        }
    }

    use mcp_logic::GateKind;
}
