//! Graphviz DOT export of netlists.
//!
//! For inspecting small circuits and illustrating analysis results:
//! inputs are diamonds, flip-flops are boxes, gates are ellipses labelled
//! with their function, and the sequential D edges are dashed (they cross
//! the clock boundary).

use crate::model::{Netlist, NodeId, NodeKind};
use std::fmt::Write as _;

/// Options for [`to_dot`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DotOptions {
    /// Node ids (FF indices into [`Netlist::dffs`]) to highlight as a
    /// source/sink pair, drawn filled.
    pub highlight_pair: Option<(usize, usize)>,
    /// Extra nodes to shade (e.g. a hazard path).
    pub shaded: Vec<NodeId>,
}

/// Renders the netlist as a Graphviz `digraph`.
///
/// The output is deterministic (nodes in id order) so it can be used in
/// golden tests.
pub fn to_dot(netlist: &Netlist, opts: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", netlist.name());
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [fontname=\"Helvetica\"];");

    let highlighted: Vec<NodeId> = opts
        .highlight_pair
        .map(|(i, j)| vec![netlist.dffs()[i], netlist.dffs()[j]])
        .unwrap_or_default();

    for (id, node) in netlist.nodes() {
        let (shape, label) = match node.kind() {
            NodeKind::Input => ("diamond", node.name().to_owned()),
            NodeKind::Const(v) => ("plaintext", format!("{}", u8::from(v))),
            NodeKind::Dff => ("box", format!("{}\\nDFF", node.name())),
            NodeKind::Gate(kind) => ("ellipse", format!("{}\\n{}", node.name(), kind)),
        };
        let mut attrs = format!("shape={shape}, label=\"{label}\"");
        if highlighted.contains(&id) {
            attrs.push_str(", style=filled, fillcolor=gold");
        } else if opts.shaded.contains(&id) {
            attrs.push_str(", style=filled, fillcolor=lightblue");
        }
        let _ = writeln!(out, "  n{} [{attrs}];", id.index());
    }

    for (id, node) in netlist.nodes() {
        let dashed = node.kind().is_dff();
        for &f in node.fanins() {
            let style = if dashed { " [style=dashed]" } else { "" };
            let _ = writeln!(out, "  n{} -> n{}{style};", f.index(), id.index());
        }
    }
    for &po in netlist.outputs() {
        let _ = writeln!(
            out,
            "  out_{0} [shape=plaintext, label=\"OUT\"]; n{0} -> out_{0};",
            po.index()
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;
    use mcp_logic::GateKind;

    fn tiny() -> Netlist {
        let mut b = NetlistBuilder::new("tiny");
        let a = b.input("A");
        let q = b.dff("Q");
        let g = b.gate("G", GateKind::Nand, [a, q]).unwrap();
        b.set_dff_input(q, g).unwrap();
        b.mark_output(q);
        b.finish().unwrap()
    }

    #[test]
    fn renders_all_nodes_and_edges() {
        let nl = tiny();
        let dot = to_dot(&nl, &DotOptions::default());
        assert!(dot.starts_with("digraph \"tiny\""));
        assert!(dot.contains("shape=diamond, label=\"A\""));
        assert!(dot.contains("Q\\nDFF"));
        assert!(dot.contains("G\\nNAND"));
        // D edge is dashed; combinational edges are not.
        assert!(dot.contains("[style=dashed];"));
        assert!(dot.contains("-> out_"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn highlighting_marks_the_pair() {
        let nl = tiny();
        let dot = to_dot(
            &nl,
            &DotOptions {
                highlight_pair: Some((0, 0)),
                shaded: vec![nl.find_node("G").unwrap()],
            },
        );
        assert!(dot.contains("fillcolor=gold"));
        assert!(dot.contains("fillcolor=lightblue"));
    }

    #[test]
    fn output_is_deterministic() {
        let nl = tiny();
        let a = to_dot(&nl, &DotOptions::default());
        let b = to_dot(&nl, &DotOptions::default());
        assert_eq!(a, b);
    }
}
