//! Offline stand-in for `serde_json`.
//!
//! Renders and parses the vendored serde [`Content`] tree as JSON text.
//! Output conventions follow real `serde_json`: compact form has no
//! whitespace, pretty form indents by two spaces, floats always carry a
//! decimal point or exponent so they re-parse as floats, and non-finite
//! floats serialize as `null`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some(2), 0);
    Ok(out)
}

/// Parses a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let content = parse(s)?;
    Ok(T::from_content(&content)?)
}

/// Parses a JSON string into the untyped [`Content`] tree (the stand-in's
/// equivalent of `serde_json::Value`), for consumers that need to walk
/// arbitrary JSON without a schema.
pub fn from_str_content(s: &str) -> Result<Content, Error> {
    parse(s)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_content(out: &mut String, c: &Content, indent: Option<usize>, level: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_string(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_content(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, v, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        // Real serde_json turns NaN/Infinity into null.
        out.push_str("null");
        return;
    }
    let text = v.to_string();
    out.push_str(&text);
    // `3.0f64` displays as "3"; force a trailing ".0" so the value
    // re-parses as a float, matching serde_json's ryu output.
    if !text.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Content::Null),
            Some(b't') => self.literal("true", Content::Bool(true)),
            Some(b'f') => self.literal("false", Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u')?;
                                    let lo = self.hex4()?;
                                    let code = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(code)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 character (input was a &str, so the
                    // bytes are valid UTF-8).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = v * 16 + digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            let v: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
            Ok(Content::F64(v))
        } else if let Some(stripped) = text.strip_prefix('-') {
            let v: i64 = text.parse().map_err(|_| self.err("invalid number"))?;
            if stripped.parse::<u64>().is_ok() && v >= 0 {
                Ok(Content::U64(v as u64))
            } else {
                Ok(Content::I64(v))
            }
        } else {
            let v: u64 = text.parse().map_err(|_| self.err("invalid number"))?;
            Ok(Content::U64(v))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Inner {
        label: String,
        count: u64,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Outer {
        flag: bool,
        items: Vec<Inner>,
        maybe: Option<i64>,
        #[serde(skip)]
        scratch: u64,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Tagged {
        Unit,
        Payload { value: u64, ratio: f64 },
    }

    #[test]
    fn derive_round_trips_structs() {
        let v = Outer {
            flag: true,
            items: vec![Inner {
                label: "a\"b\\c\nd".to_owned(),
                count: 3,
            }],
            maybe: Some(-4),
            scratch: 99,
        };
        let text = to_string(&v).expect("serialize");
        let back: Outer = from_str(&text).expect("parse");
        // `scratch` is #[serde(skip)], so it comes back as Default.
        assert_eq!(back.scratch, 0);
        assert_eq!(back.flag, v.flag);
        assert_eq!(back.items, v.items);
        assert_eq!(back.maybe, v.maybe);
        assert!(!text.contains("scratch"));
    }

    #[test]
    fn enums_are_externally_tagged() {
        assert_eq!(to_string(&Tagged::Unit).unwrap(), "\"Unit\"");
        let p = Tagged::Payload {
            value: 7,
            ratio: 0.5,
        };
        let text = to_string(&p).unwrap();
        assert_eq!(text, "{\"Payload\":{\"value\":7,\"ratio\":0.5}}");
        assert_eq!(from_str::<Tagged>(&text).unwrap(), p);
        assert_eq!(from_str::<Tagged>("\"Unit\"").unwrap(), Tagged::Unit);
        assert!(from_str::<Tagged>("\"Nope\"").is_err());
    }

    #[test]
    fn pretty_output_uses_two_space_indent() {
        let v = Inner {
            label: "x".to_owned(),
            count: 1,
        };
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "{\n  \"label\": \"x\",\n  \"count\": 1\n}");
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: f64 = from_str("3.0").unwrap();
        assert_eq!(back, 3.0);
    }

    #[test]
    fn numbers_classify_by_sign_and_fraction() {
        assert_eq!(parse("42").unwrap(), Content::U64(42));
        assert_eq!(parse("-42").unwrap(), Content::I64(-42));
        assert_eq!(parse("4.5").unwrap(), Content::F64(4.5));
        assert_eq!(parse("1e3").unwrap(), Content::F64(1000.0));
    }

    #[test]
    fn parse_errors_carry_position() {
        assert!(from_str::<u64>("[1, 2").is_err());
        assert!(from_str::<u64>("{\"a\": }").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<String>("\"\\u00zz\"").is_err());
    }

    #[test]
    fn unicode_escapes_round_trip() {
        let s: String = from_str("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(s, "é😀");
        let text = to_string(&"tab\tnew\nline").unwrap();
        assert_eq!(text, "\"tab\\tnew\\nline\"");
    }
}
