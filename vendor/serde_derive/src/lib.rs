//! Offline stand-in for `serde_derive`.
//!
//! Expands `#[derive(Serialize)]` and `#[derive(Deserialize)]` against the
//! vendored `serde` content model. The item is parsed straight from the
//! `proc_macro::TokenStream` (no `syn`/`quote` available offline): only the
//! struct/enum name, field names, variant names, and the `#[serde(skip)]`,
//! `#[serde(default)]` and `#[serde(skip_serializing_if = "path")]` markers
//! are needed — field *types* never are, because the generated code
//! dispatches through the `Serialize`/`Deserialize` traits and lets
//! inference do the rest.
//!
//! Supported shapes: structs with named fields, enums with unit and
//! struct variants (serialized externally tagged, like real serde).
//! Anything else — generics, tuple structs/variants, other `#[serde(...)]`
//! attributes — is a `compile_error!` rather than a silent divergence.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};
use std::iter::Peekable;

/// Derives `serde::Serialize` for a named struct or unit/struct-variant enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Ser)
}

/// Derives `serde::Deserialize` for a named struct or unit/struct-variant enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::De)
}

#[derive(Clone, Copy)]
enum Mode {
    Ser,
    De,
}

struct Field {
    name: String,
    skip: bool,
    /// `#[serde(default)]`: a missing entry deserializes to `Default::default()`.
    default: bool,
    /// `#[serde(skip_serializing_if = "path")]`: the field is omitted from
    /// serialized output when `path(&value)` is true.
    skip_serializing_if: Option<String>,
}

struct Variant {
    name: String,
    /// `None` for a unit variant, `Some(fields)` for a struct variant.
    fields: Option<Vec<Field>>,
}

enum Body {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => match mode {
            Mode::Ser => gen_serialize(&item),
            Mode::De => gen_deserialize(&item),
        },
        Err(msg) => format!("::core::compile_error!({msg:?});"),
    };
    code.parse()
        .expect("derive stand-in generated invalid Rust")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

#[derive(Default)]
struct AttrInfo {
    skip: bool,
    default: bool,
    skip_serializing_if: Option<String>,
}

/// Consumes leading `#[...]` attributes (including doc comments). The
/// recognized `#[serde(...)]` arguments are `skip`, `default`, and
/// `skip_serializing_if = "path"` (comma-separable); other forms error.
fn parse_attrs(it: &mut Tokens) -> Result<AttrInfo, String> {
    let mut info = AttrInfo::default();
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                let group = match it.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                    _ => return Err("malformed attribute".to_owned()),
                };
                let mut inner = group.stream().into_iter();
                let head = match inner.next() {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    _ => continue,
                };
                if head != "serde" {
                    continue;
                }
                let args = match inner.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
                    _ => return Err("malformed #[serde(...)] attribute".to_owned()),
                };
                parse_serde_args(args, &mut info)?;
            }
            _ => return Ok(info),
        }
    }
}

/// Parses the comma-separated argument list of one `#[serde(...)]`.
fn parse_serde_args(args: Group, info: &mut AttrInfo) -> Result<(), String> {
    let unsupported = |args: &Group| {
        Err(format!(
            "the vendored serde derive supports only #[serde(skip)], \
             #[serde(default)] and #[serde(skip_serializing_if = \"path\")], \
             not #[serde({})]",
            args.stream()
        ))
    };
    let mut it = args.stream().into_iter().peekable();
    while let Some(tok) = it.next() {
        let key = match tok {
            TokenTree::Ident(id) => id.to_string(),
            _ => return unsupported(&args),
        };
        match key.as_str() {
            "skip" => info.skip = true,
            "default" => info.default = true,
            "skip_serializing_if" => {
                match it.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == '=' => {}
                    _ => return unsupported(&args),
                }
                let lit = match it.next() {
                    Some(TokenTree::Literal(l)) => l.to_string(),
                    _ => return unsupported(&args),
                };
                // The literal renders with its surrounding quotes; the
                // content is a path expression like `Option::is_none`.
                let path = lit.trim_matches('"').to_owned();
                if path.is_empty() || path.len() + 2 != lit.len() {
                    return unsupported(&args);
                }
                info.skip_serializing_if = Some(path);
            }
            _ => return unsupported(&args),
        }
        match it.next() {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            _ => return unsupported(&args),
        }
    }
    Ok(())
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, ...) if present.
fn skip_vis(it: &mut Tokens) {
    if matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        it.next();
        if matches!(
            it.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            it.next();
        }
    }
}

fn expect_ident(it: &mut Tokens, what: &str) -> Result<String, String> {
    match it.next() {
        Some(TokenTree::Ident(id)) => Ok(id.to_string()),
        other => Err(format!(
            "expected {what}, found {}",
            other.map_or_else(|| "end of input".to_owned(), |t| format!("`{t}`"))
        )),
    }
}

/// Skips a field's type: everything up to the next comma that is not
/// nested inside generic angle brackets. `->` is recognized so the `>` of
/// a return arrow does not unbalance the depth count.
fn skip_type(it: &mut Tokens) {
    let mut depth = 0i32;
    let mut prev_dash = false;
    while let Some(tok) = it.peek() {
        if let TokenTree::Punct(p) = tok {
            let c = p.as_char();
            match c {
                ',' if depth == 0 => {
                    it.next();
                    return;
                }
                '<' => depth += 1,
                '>' if !prev_dash => depth -= 1,
                _ => {}
            }
            prev_dash = c == '-';
        } else {
            prev_dash = false;
        }
        it.next();
    }
}

fn parse_named_fields(group: Group) -> Result<Vec<Field>, String> {
    let mut it = group.stream().into_iter().peekable();
    let mut fields = Vec::new();
    while it.peek().is_some() {
        let attrs = parse_attrs(&mut it)?;
        skip_vis(&mut it);
        let name = expect_ident(&mut it, "a field name")?;
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        skip_type(&mut it);
        fields.push(Field {
            name,
            skip: attrs.skip,
            default: attrs.default,
            skip_serializing_if: attrs.skip_serializing_if,
        });
    }
    Ok(fields)
}

fn parse_variants(group: Group) -> Result<Vec<Variant>, String> {
    let mut it = group.stream().into_iter().peekable();
    let mut variants = Vec::new();
    while it.peek().is_some() {
        let attrs = parse_attrs(&mut it)?;
        if attrs.skip || attrs.default || attrs.skip_serializing_if.is_some() {
            return Err("#[serde(...)] on enum variants is not supported".to_owned());
        }
        let name = expect_ident(&mut it, "a variant name")?;
        let fields = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.clone();
                it.next();
                Some(parse_named_fields(g)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "tuple variant `{name}` is not supported by the vendored serde derive; \
                     use a struct variant"
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "explicit discriminant on variant `{name}` is not supported \
                     by the vendored serde derive"
                ));
            }
            _ => None,
        };
        match it.next() {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(other) => {
                return Err(format!("unexpected token `{other}` after variant `{name}`"))
            }
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut it = input.into_iter().peekable();
    let item_attrs = parse_attrs(&mut it)?;
    if item_attrs.skip || item_attrs.default || item_attrs.skip_serializing_if.is_some() {
        return Err("#[serde(...)] field attributes are not valid on items".to_owned());
    }
    skip_vis(&mut it);
    let kw = expect_ident(&mut it, "`struct` or `enum`")?;
    let name = expect_ident(&mut it, "the type name")?;
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "the vendored serde derive does not support generic type `{name}`"
        ));
    }
    let body_group = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        _ => {
            return Err(format!(
                "the vendored serde derive supports only braced {kw} bodies \
                 (no tuple or unit structs) for `{name}`"
            ))
        }
    };
    let body = match kw.as_str() {
        "struct" => Body::Struct(parse_named_fields(body_group)?),
        "enum" => Body::Enum(parse_variants(body_group)?),
        other => return Err(format!("expected `struct` or `enum`, found `{other}`")),
    };
    Ok(Item { name, body })
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn push_entry(out: &mut String, f: &Field, value_expr: &str) {
    let key = &f.name;
    let push = format!(
        "entries.push((::std::string::String::from({key:?}), \
         ::serde::Serialize::to_content({value_expr})));\n"
    );
    match &f.skip_serializing_if {
        Some(path) => out.push_str(&format!("if !{path}({value_expr}) {{ {push} }}\n")),
        None => out.push_str(&push),
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                push_entry(&mut pushes, f, &format!("&self.{}", f.name));
            }
            format!(
                "let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Content)> \
                     = ::std::vec::Vec::new();\n\
                 let _ = &mut entries;\n\
                 {pushes}\
                 ::serde::Content::Map(entries)"
            )
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    None => arms.push_str(&format!(
                        "{name}::{vname} => \
                         ::serde::Content::Str(::std::string::String::from({vname:?})),\n"
                    )),
                    Some(fields) => {
                        let pattern: String = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{}: _, ", f.name)
                                } else {
                                    format!("{}, ", f.name)
                                }
                            })
                            .collect();
                        let mut pushes = String::new();
                        for f in fields.iter().filter(|f| !f.skip) {
                            push_entry(&mut pushes, f, &f.name);
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {pattern} }} => {{\n\
                                 let mut entries: ::std::vec::Vec<(::std::string::String, \
                                     ::serde::Content)> = ::std::vec::Vec::new();\n\
                                 let _ = &mut entries;\n\
                                 {pushes}\
                                 ::serde::Content::Map(::std::vec![(\
                                     ::std::string::String::from({vname:?}), \
                                     ::serde::Content::Map(entries))])\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn gen_field_inits(fields: &[Field], map_var: &str) -> String {
    fields
        .iter()
        .map(|f| {
            if f.skip {
                format!("{}: ::std::default::Default::default(), ", f.name)
            } else if f.default {
                format!(
                    "{}: ::serde::field_or_default({map_var}, {:?})?, ",
                    f.name, f.name
                )
            } else {
                format!("{}: ::serde::field({map_var}, {:?})?, ", f.name, f.name)
            }
        })
        .collect()
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let inits = gen_field_inits(fields, "_m");
            format!(
                "let _m = c.as_map().ok_or_else(|| \
                     ::serde::DeError::expected(\"object\", {name:?}, c))?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    None => unit_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    Some(fields) => {
                        let inits = gen_field_inits(fields, "_f");
                        tagged_arms.push_str(&format!(
                            "{vname:?} => {{\n\
                                 let _f = _inner.as_map().ok_or_else(|| \
                                     ::serde::DeError::expected(\
                                         \"object\", \"{name}::{vname}\", _inner))?;\n\
                                 ::std::result::Result::Ok({name}::{vname} {{ {inits} }})\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "match c {{\n\
                     ::serde::Content::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\
                         other => ::std::result::Result::Err(::serde::DeError(\
                             ::std::format!(\
                                 \"unknown unit variant `{{other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Content::Map(m) if m.len() == 1 => {{\n\
                         let (tag, _inner) = &m[0];\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\
                             other => ::std::result::Result::Err(::serde::DeError(\
                                 ::std::format!(\
                                     \"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => ::std::result::Result::Err(::serde::DeError::expected(\
                         \"variant string or single-entry object\", {name:?}, other)),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(c: &::serde::Content) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
