//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest the workspace's property tests use:
//! generate-only strategies (no shrinking), the `proptest!` runner macro,
//! `prop_assert*`/`prop_assume!`, `prop_oneof!`, `any::<T>()`, integer
//! ranges and tuples as strategies, `collection::vec`, `prop_map`,
//! `prop_recursive`, and string-literal strategies interpreted as a small
//! regex dialect (char classes, groups with alternation, `{m,n}`/`?`/`*`
//! /`+` quantifiers, and `\PC` for "any non-control char").
//!
//! Case generation is deterministic: every test function replays the same
//! fixed seed sequence, so failures reproduce without a persistence file.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Strategy trait and combinators.
pub mod strategy {
    use rand::rngs::StdRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of values of type `Value`.
    ///
    /// Unlike real proptest there is no value tree and no shrinking —
    /// `gen_value` draws one concrete value.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn gen_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Erases the concrete strategy type behind an `Rc`.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.gen_value(rng)))
        }

        /// Builds recursive values: `self` generates leaves and `expand`
        /// wraps an inner strategy into one more layer. `depth` bounds the
        /// nesting; the size/branch hints of real proptest are accepted
        /// but unused.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            expand: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let deeper = expand(strat).boxed();
                let shallow = leaf.clone();
                strat = BoxedStrategy(Rc::new(move |rng: &mut StdRng| {
                    use rand::Rng;
                    // Bias toward expansion so trees actually get deep,
                    // but keep a leaf chance at every level.
                    if rng.random_range(0u32..4) == 0 {
                        shallow.gen_value(rng)
                    } else {
                        deeper.gen_value(rng)
                    }
                }));
            }
            strat
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn gen_value(&self, rng: &mut StdRng) -> O {
            (self.f)(self.base.gen_value(rng))
        }
    }

    /// A reference-counted, clonable, type-erased strategy.
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut StdRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut StdRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn gen_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Picks one of the given strategies uniformly per generated value.
    /// Backs the `prop_oneof!` macro.
    pub fn one_of<T: 'static>(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        BoxedStrategy(Rc::new(move |rng: &mut StdRng| {
            use rand::Rng;
            let k = rng.random_range(0..options.len());
            options[k].gen_value(rng)
        }))
    }

    impl<T> Strategy for Range<T>
    where
        T: rand::SampleUniform + PartialOrd,
    {
        type Value = T;

        fn gen_value(&self, rng: &mut StdRng) -> T {
            use rand::Rng;
            rng.random_range(self.start..self.end)
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        T: rand::SampleUniform + PartialOrd,
    {
        type Value = T;

        fn gen_value(&self, rng: &mut StdRng) -> T {
            use rand::Rng;
            rng.random_range(*self.start()..=*self.end())
        }
    }

    impl Strategy for &str {
        type Value = String;

        fn gen_value(&self, rng: &mut StdRng) -> String {
            crate::string::generate(self, rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+),)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
    }
}

/// `any::<T>()` — full-range generation for primitive types.
pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl<T: rand::Standard> Arbitrary for T {
        fn arbitrary(rng: &mut StdRng) -> T {
            use rand::Rng;
            rng.random()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (full range for integers/bools).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        vec_strategy(element, len)
    }

    fn vec_strategy<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "empty length range for collection::vec");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            use rand::Rng;
            let n = rng.random_range(self.len.start..self.len.end);
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Runner configuration and per-case error plumbing.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Subset of proptest's config: only the case count matters here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test function.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// A `prop_assert*` failed; the test fails.
        Fail(String),
    }

    /// Drives the cases of one `proptest!` function.
    pub struct TestRunner {
        config: ProptestConfig,
        case: u64,
    }

    impl TestRunner {
        /// Creates a runner for `config`.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config, case: 0 }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// Deterministic per-case generator: case `k` always sees the
        /// same stream, so failures reproduce run over run.
        pub fn next_rng(&mut self) -> StdRng {
            let k = self.case;
            self.case += 1;
            StdRng::seed_from_u64(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(k ^ 0x0a0b_0c0d))
        }
    }
}

/// String generation from a small regex dialect.
pub mod string {
    use rand::rngs::StdRng;
    use rand::Rng;

    struct Piece {
        node: Node,
        min: u32,
        max: u32,
    }

    enum Node {
        Lit(char),
        Class(Vec<(char, char)>),
        NonControl,
        Alt(Vec<Vec<Piece>>),
    }

    /// Generates one string matching `pattern`.
    ///
    /// Panics on syntax outside the supported dialect — patterns are
    /// authored in-tree, so that is a programming error, not input error.
    pub fn generate(pattern: &str, rng: &mut StdRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let alts = parse_alternation(&chars, &mut pos, pattern);
        assert!(
            pos == chars.len(),
            "unsupported regex `{pattern}`: trailing `{}`",
            chars[pos]
        );
        let mut out = String::new();
        emit_alt(&alts, rng, &mut out);
        out
    }

    fn parse_alternation(chars: &[char], pos: &mut usize, pat: &str) -> Vec<Vec<Piece>> {
        let mut alts = vec![parse_sequence(chars, pos, pat)];
        while *pos < chars.len() && chars[*pos] == '|' {
            *pos += 1;
            alts.push(parse_sequence(chars, pos, pat));
        }
        alts
    }

    fn parse_sequence(chars: &[char], pos: &mut usize, pat: &str) -> Vec<Piece> {
        let mut seq = Vec::new();
        while *pos < chars.len() && chars[*pos] != '|' && chars[*pos] != ')' {
            let node = parse_atom(chars, pos, pat);
            let (min, max) = parse_quantifier(chars, pos, pat);
            seq.push(Piece { node, min, max });
        }
        seq
    }

    fn parse_atom(chars: &[char], pos: &mut usize, pat: &str) -> Node {
        let c = chars[*pos];
        *pos += 1;
        match c {
            '\\' => {
                let e = chars[*pos];
                *pos += 1;
                match e {
                    'P' => {
                        // `\PC`: any char not in Unicode category C.
                        assert!(
                            chars.get(*pos) == Some(&'C'),
                            "unsupported escape \\P in `{pat}`"
                        );
                        *pos += 1;
                        Node::NonControl
                    }
                    'd' => Node::Class(vec![('0', '9')]),
                    'w' => Node::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                    's' => Node::Class(vec![(' ', ' '), ('\t', '\t'), ('\n', '\n')]),
                    other => Node::Lit(other),
                }
            }
            '[' => Node::Class(parse_class(chars, pos, pat)),
            '(' => {
                let alts = parse_alternation(chars, pos, pat);
                assert!(chars.get(*pos) == Some(&')'), "unclosed group in `{pat}`");
                *pos += 1;
                Node::Alt(alts)
            }
            '.' => Node::NonControl,
            other => Node::Lit(other),
        }
    }

    fn parse_class(chars: &[char], pos: &mut usize, pat: &str) -> Vec<(char, char)> {
        let mut ranges = Vec::new();
        loop {
            let c = *chars
                .get(*pos)
                .unwrap_or_else(|| panic!("unclosed class in `{pat}`"));
            *pos += 1;
            if c == ']' {
                assert!(!ranges.is_empty(), "empty class in `{pat}`");
                return ranges;
            }
            let lo = if c == '\\' {
                let e = chars[*pos];
                *pos += 1;
                e
            } else {
                c
            };
            if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1) != Some(&']') {
                *pos += 1;
                let hi = chars[*pos];
                *pos += 1;
                assert!(lo <= hi, "inverted range in `{pat}`");
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
    }

    fn parse_quantifier(chars: &[char], pos: &mut usize, pat: &str) -> (u32, u32) {
        match chars.get(*pos) {
            Some('?') => {
                *pos += 1;
                (0, 1)
            }
            Some('*') => {
                *pos += 1;
                (0, 8)
            }
            Some('+') => {
                *pos += 1;
                (1, 8)
            }
            Some('{') => {
                *pos += 1;
                let min = parse_number(chars, pos, pat);
                let max = if chars.get(*pos) == Some(&',') {
                    *pos += 1;
                    parse_number(chars, pos, pat)
                } else {
                    min
                };
                assert!(
                    chars.get(*pos) == Some(&'}'),
                    "malformed repetition in `{pat}`"
                );
                *pos += 1;
                (min, max)
            }
            _ => (1, 1),
        }
    }

    fn parse_number(chars: &[char], pos: &mut usize, pat: &str) -> u32 {
        let start = *pos;
        while chars.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
            *pos += 1;
        }
        assert!(*pos > start, "expected number in repetition of `{pat}`");
        chars[start..*pos]
            .iter()
            .collect::<String>()
            .parse()
            .unwrap()
    }

    fn emit_alt(alts: &[Vec<Piece>], rng: &mut StdRng, out: &mut String) {
        let seq = &alts[rng.random_range(0..alts.len())];
        for piece in seq {
            let n = rng.random_range(piece.min..=piece.max);
            for _ in 0..n {
                emit_node(&piece.node, rng, out);
            }
        }
    }

    fn emit_node(node: &Node, rng: &mut StdRng, out: &mut String) {
        match node {
            Node::Lit(c) => out.push(*c),
            Node::Class(ranges) => {
                let total: u32 = ranges
                    .iter()
                    .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                    .sum();
                let mut k = rng.random_range(0..total);
                for &(lo, hi) in ranges {
                    let span = hi as u32 - lo as u32 + 1;
                    if k < span {
                        out.push(char::from_u32(lo as u32 + k).expect("class char"));
                        return;
                    }
                    k -= span;
                }
                unreachable!("class sampling out of bounds")
            }
            Node::NonControl => out.push(sample_non_control(rng)),
            Node::Alt(alts) => emit_alt(alts, rng, out),
        }
    }

    /// Mostly printable ASCII with an occasional multi-byte character, so
    /// parser fuzzing sees UTF-8 boundaries too.
    fn sample_non_control(rng: &mut StdRng) -> char {
        const EXOTIC: [char; 8] = ['é', 'Ω', '中', '𝕏', '😀', '\u{a0}', 'ß', '・'];
        if rng.random_range(0u32..12) == 0 {
            EXOTIC[rng.random_range(0..EXOTIC.len())]
        } else {
            char::from_u32(rng.random_range(0x20u32..0x7f)).expect("printable ascii")
        }
    }
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?} == {:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?} == {:?}`: {}",
            l,
            r,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?} != {:?}`", l, r);
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Uniformly picks one of several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::one_of(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property-test functions. Each `#[test]` fn body runs once per
/// generated case; `prop_assert*` failures abort with a panic carrying
/// the case's inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands each test fn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut __pt_runner = $crate::test_runner::TestRunner::new($config);
            let mut __pt_rejected: u32 = 0;
            for __pt_case in 0..__pt_runner.cases() {
                let mut __pt_rng = __pt_runner.next_rng();
                $(let $pat = $crate::strategy::Strategy::gen_value(&$strategy, &mut __pt_rng);)+
                let __pt_outcome: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __pt_outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {
                        __pt_rejected += 1;
                    }
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        panic!(
                            "proptest case {}/{} failed: {}",
                            __pt_case + 1,
                            __pt_runner.cases(),
                            msg
                        );
                    }
                }
            }
            let _ = __pt_rejected;
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = (0u64..10, 5usize..6, 0u32..=3);
        for _ in 0..200 {
            let (a, b, c) = s.gen_value(&mut rng);
            assert!(a < 10);
            assert_eq!(b, 5);
            assert!(c <= 3);
        }
    }

    #[test]
    fn regex_strings_match_their_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let s = "[A-Za-z][A-Za-z0-9]{0,4}".gen_value(&mut rng);
            assert!(!s.is_empty() && s.len() <= 5, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            let t = "INPUT\\([A-Za-z][A-Za-z0-9]{0,3}\\)".gen_value(&mut rng);
            assert!(t.starts_with("INPUT(") && t.ends_with(')'), "{t:?}");
            let u = "(AND|OR|NOT)".gen_value(&mut rng);
            assert!(["AND", "OR", "NOT"].contains(&u.as_str()), "{u:?}");
            let v = "\\PC{0,20}".gen_value(&mut rng);
            assert!(
                v.chars().count() <= 20 && !v.chars().any(char::is_control),
                "{v:?}"
            );
            let w = "# [ -~]{0,20}".gen_value(&mut rng);
            assert!(w.starts_with("# "), "{w:?}");
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum T {
            Leaf(u32),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(_) => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0u32..4).prop_map(T::Leaf);
        let tree = leaf.prop_recursive(5, 64, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = StdRng::seed_from_u64(3);
        let mut saw_node = false;
        for _ in 0..100 {
            let t = tree.gen_value(&mut rng);
            assert!(depth(&t) <= 6);
            saw_node |= matches!(t, T::Node(..));
        }
        assert!(saw_node, "recursion never expanded");
    }

    #[test]
    fn collection_vec_respects_length_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = crate::collection::vec(0u64..5, 0..12);
        for _ in 0..100 {
            let v = s.gen_value(&mut rng);
            assert!(v.len() < 12);
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro machinery itself: patterns, assume, assert.
        #[test]
        fn macro_plumbing_works((a, b) in (0u64..100, 0u64..100), c in any::<u64>()) {
            prop_assume!(a != b);
            prop_assert!(a < 100 && b < 100);
            prop_assert_ne!(a, b);
            prop_assert_eq!(c, c, "c must equal itself: {}", c);
            let picked = prop_oneof![Just(1u8), Just(2u8)];
            let mut rng = StdRng::seed_from_u64(a);
            let v = picked.gen_value(&mut rng);
            prop_assert!(v == 1 || v == 2);
        }
    }
}
