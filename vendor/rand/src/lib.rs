//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of the rand 0.9 API it actually uses: [`Rng`],
//! [`SeedableRng`], [`rngs::StdRng`] and [`rngs::SmallRng`]. Both
//! generators are xoshiro256\*\* seeded through SplitMix64 — deterministic
//! for a fixed seed on every platform, which is all the repository's
//! reproducibility guarantees require. The streams differ from upstream
//! `rand`'s (ChaCha12), so absolute random values are not comparable with
//! runs made against the real crate; every in-tree consumer relies only on
//! determinism and statistical quality, not on specific values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level uniform word generation.
pub trait RngCore {
    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an [`RngCore`].
///
/// Stand-in for rand's `StandardUniform: Distribution<T>` bound.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 16) as u16
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types that [`Rng::random_range`] can sample uniformly.
pub trait SampleUniform: Copy {
    /// Uniform sample from `[low, high]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// `self + 1`, saturating — used to convert exclusive upper bounds.
    fn prev(self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "random_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width range of a 128-bit type cannot occur for
                    // the implemented (≤64-bit) types except low..=high
                    // covering the whole domain.
                    return ((rng.next_u64() as u128) as $t).wrapping_add(low);
                }
                // Rejection sampling on 64-bit words keeps the draw exact.
                let zone = u64::MAX - ((u64::MAX as u128 + 1) % span) as u64;
                loop {
                    let w = rng.next_u64();
                    if w <= zone {
                        return low.wrapping_add((w as u128 % span) as $t);
                    }
                }
            }
            fn prev(self) -> Self {
                self.wrapping_sub(1)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "random_range: empty range");
        T::sample_inclusive(rng, self.start, self.end.prev())
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of an inferred type.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from `range` (`a..b` or `a..=b`).
    fn random_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256\*\* — the repository's stand-in for rand's `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Same generator under the `SmallRng` name (`small_rng` feature of
    /// the real crate).
    pub type SmallRng = StdRng;

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: u64 = a.random();
        let vb: u64 = b.random();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.random_range(0..10);
            assert!(x < 10);
            let y: u64 = rng.random_range(1..=3);
            assert!((1..=3).contains(&y));
            let z: i32 = rng.random_range(-5..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let ones = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_000..6_000).contains(&ones), "{ones}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
