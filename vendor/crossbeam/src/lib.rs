//! Offline stand-in for the `crossbeam` crate.
//!
//! Two APIs the workspace uses are provided with crossbeam-0.8-shaped
//! signatures:
//!
//! - [`thread::scope`], adapted over `std::thread::scope` (stable since
//!   Rust 1.63): the scope closure and every spawned closure receive a
//!   `&Scope` handle, `scope` returns `Result<R>`, and handles expose
//!   `join() -> Result<T>`.
//! - [`deque`]: the work-stealing `Worker`/`Stealer`/`Injector` trio.
//!   The real crate implements the Chase–Lev lock-free deque; this
//!   stand-in keeps the same API and semantics (owner pops LIFO from one
//!   end, thieves steal FIFO from the other, a shared FIFO injector
//!   feeds batches) over `Mutex<VecDeque>` — correct under the crate's
//!   `forbid(unsafe_code)` policy, and contention on the pair-scheduling
//!   workloads here is negligible next to per-item work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// Error payload of a panicked scope or thread.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle for spawning threads inside a [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    // `&std::thread::Scope` is Copy; expose the same convenience so the
    // handle can be moved into nested spawns.
    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a thread spawned inside a [`scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives this scope so it
        /// can spawn further threads (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&handle)),
            }
        }
    }

    /// Creates a scope in which threads borrowing the environment can be
    /// spawned; all are joined before `scope` returns.
    ///
    /// Unlike crossbeam, a panicking child propagates through
    /// `std::thread::scope` (aborting the scope with the same panic), so
    /// the `Err` arm is reserved for panics of the closure itself —
    /// call sites treating `Err` as "a worker panicked" remain correct.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Work-stealing deques and a shared injector queue (crossbeam 0.8 API).
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt.
    ///
    /// The mutex-based stand-in never loses a race mid-operation, so it
    /// never returns [`Steal::Retry`]; the variant exists (and callers
    /// must handle it) so code written against this API runs unchanged on
    /// the real lock-free implementation.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The source was empty at the time of the attempt.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The attempt lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if the attempt succeeded.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// Whether the source was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        /// Whether a task was stolen.
        pub fn is_success(&self) -> bool {
            matches!(self, Steal::Success(_))
        }

        /// Whether the attempt should be retried.
        pub fn is_retry(&self) -> bool {
            matches!(self, Steal::Retry)
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Flavor {
        Lifo,
        Fifo,
    }

    /// The owner's handle of a work-stealing deque.
    ///
    /// The owner pushes and pops at the "hot" end (back in LIFO flavor,
    /// front in FIFO flavor); [`Stealer`]s take from the opposite (front)
    /// end, so owner and thieves rarely contend on the same task.
    #[derive(Debug)]
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
        flavor: Flavor,
    }

    impl<T> Worker<T> {
        /// Creates a LIFO deque: the owner pops its most recently pushed
        /// task first (depth-first, cache-friendly).
        pub fn new_lifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
                flavor: Flavor::Lifo,
            }
        }

        /// Creates a FIFO deque: the owner pops its oldest task first.
        pub fn new_fifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
                flavor: Flavor::Fifo,
            }
        }

        /// Pushes a task onto the owner's end.
        pub fn push(&self, task: T) {
            self.queue.lock().expect("deque poisoned").push_back(task);
        }

        /// Pops a task from the owner's end.
        pub fn pop(&self) -> Option<T> {
            let mut q = self.queue.lock().expect("deque poisoned");
            match self.flavor {
                Flavor::Lifo => q.pop_back(),
                Flavor::Fifo => q.pop_front(),
            }
        }

        /// Creates a thief handle stealing from the cold end.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }

        /// Whether the deque was empty at the time of the call.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("deque poisoned").is_empty()
        }

        /// Number of tasks in the deque at the time of the call.
        pub fn len(&self) -> usize {
            self.queue.lock().expect("deque poisoned").len()
        }
    }

    /// A thief's handle of a [`Worker`] deque; cloneable and shareable
    /// across threads.
    #[derive(Debug)]
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals one task from the front (cold end) of the deque.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("deque poisoned").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Steals roughly half of the deque into `dest`, returning one of
        /// the stolen tasks directly.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let batch: Vec<T> = {
                let mut q = self.queue.lock().expect("deque poisoned");
                let n = q.len().div_ceil(2);
                q.drain(..n).collect()
            };
            let mut iter = batch.into_iter();
            match iter.next() {
                None => Steal::Empty,
                Some(first) => {
                    for t in iter {
                        dest.push(t);
                    }
                    Steal::Success(first)
                }
            }
        }

        /// Whether the deque was empty at the time of the call.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("deque poisoned").is_empty()
        }

        /// Number of tasks in the deque at the time of the call.
        pub fn len(&self) -> usize {
            self.queue.lock().expect("deque poisoned").len()
        }
    }

    /// A shared FIFO queue seeding a pool of [`Worker`]s.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task onto the back of the queue.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .expect("injector poisoned")
                .push_back(task);
        }

        /// Steals one task from the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("injector poisoned").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Moves a batch of tasks from the front of the queue into `dest`,
        /// returning one of them directly. The batch size is the real
        /// crate's heuristic: half the queue, capped so no single thief
        /// drains a large injector.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            const MAX_BATCH: usize = 32;
            let batch: Vec<T> = {
                let mut q = self.queue.lock().expect("injector poisoned");
                let n = q.len().div_ceil(2).min(MAX_BATCH);
                q.drain(..n).collect()
            };
            let mut iter = batch.into_iter();
            match iter.next() {
                None => Steal::Empty,
                Some(first) => {
                    for t in iter {
                        dest.push(t);
                    }
                    Steal::Success(first)
                }
            }
        }

        /// Whether the queue was empty at the time of the call.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector poisoned").is_empty()
        }

        /// Number of tasks in the queue at the time of the call.
        pub fn len(&self) -> usize {
            self.queue.lock().expect("injector poisoned").len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};
    use super::thread;

    #[test]
    fn scope_joins_and_collects() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().expect("join")).sum()
        })
        .expect("scope");
        assert_eq!(total, 10);
    }

    #[test]
    fn lifo_worker_pops_newest_and_stealer_takes_oldest() {
        let w: Worker<u32> = Worker::new_lifo();
        let st = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.len(), 3);
        assert_eq!(w.pop(), Some(3), "owner pops LIFO");
        assert_eq!(st.steal(), Steal::Success(1), "thief steals FIFO");
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert!(st.steal().is_empty());
        assert!(w.is_empty() && st.is_empty());
    }

    #[test]
    fn fifo_worker_pops_oldest() {
        let w: Worker<u32> = Worker::new_fifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
    }

    #[test]
    fn injector_batches_into_a_worker() {
        let inj: Injector<u32> = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        assert_eq!(inj.len(), 10);
        let w = Worker::new_lifo();
        // Half of 10 = 5: one returned, four moved into the worker.
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        assert_eq!(w.len(), 4);
        assert_eq!(inj.len(), 5);
        let empty: Injector<u32> = Injector::new();
        assert!(empty.steal_batch_and_pop(&w).is_empty());
        assert_eq!(empty.steal(), Steal::Empty);
    }

    #[test]
    fn stealer_batch_takes_half() {
        let w: Worker<u32> = Worker::new_lifo();
        let st = w.stealer();
        for i in 0..8 {
            w.push(i);
        }
        let dest = Worker::new_lifo();
        // Half of 8 = 4 stolen from the front: 0 returned, 1..=3 moved.
        assert_eq!(st.steal_batch_and_pop(&dest), Steal::Success(0));
        assert_eq!(dest.len(), 3);
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn steal_helpers_classify_variants() {
        assert!(Steal::<u8>::Empty.is_empty());
        assert!(Steal::<u8>::Retry.is_retry());
        assert!(Steal::Success(7).is_success());
        assert_eq!(Steal::Success(7).success(), Some(7));
        assert_eq!(Steal::<u8>::Empty.success(), None);
    }

    #[test]
    fn concurrent_thieves_drain_everything_exactly_once() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let inj: Injector<u64> = Injector::new();
        const N: u64 = 10_000;
        for i in 0..N {
            inj.push(i);
        }
        let sum = AtomicU64::new(0);
        let count = AtomicU64::new(0);
        thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    let local: Worker<u64> = Worker::new_lifo();
                    loop {
                        let task = local
                            .pop()
                            .or_else(|| match inj.steal_batch_and_pop(&local) {
                                Steal::Success(t) => Some(t),
                                _ => None,
                            });
                        match task {
                            Some(t) => {
                                sum.fetch_add(t, Ordering::Relaxed);
                                count.fetch_add(1, Ordering::Relaxed);
                            }
                            None => break,
                        }
                    }
                });
            }
        })
        .expect("scope");
        assert_eq!(count.load(Ordering::Relaxed), N);
        assert_eq!(sum.load(Ordering::Relaxed), N * (N - 1) / 2);
    }

    #[test]
    fn nested_spawn_through_the_handle() {
        let n = thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().map(|v| v * 2).expect("inner"))
                .join()
                .expect("outer")
        })
        .expect("scope");
        assert_eq!(n, 42);
    }
}
