//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `thread::scope` API the workspace uses is provided, adapted
//! over `std::thread::scope` (stable since Rust 1.63). The signatures
//! mirror crossbeam 0.8: the scope closure and every spawned closure
//! receive a `&Scope` handle, `scope` returns `Result<R>`, and handles
//! expose `join() -> Result<T>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// Error payload of a panicked scope or thread.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle for spawning threads inside a [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    // `&std::thread::Scope` is Copy; expose the same convenience so the
    // handle can be moved into nested spawns.
    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a thread spawned inside a [`scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives this scope so it
        /// can spawn further threads (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&handle)),
            }
        }
    }

    /// Creates a scope in which threads borrowing the environment can be
    /// spawned; all are joined before `scope` returns.
    ///
    /// Unlike crossbeam, a panicking child propagates through
    /// `std::thread::scope` (aborting the scope with the same panic), so
    /// the `Err` arm is reserved for panics of the closure itself —
    /// call sites treating `Err` as "a worker panicked" remain correct.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scope_joins_and_collects() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().expect("join")).sum()
        })
        .expect("scope");
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_the_handle() {
        let n = thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().map(|v| v * 2).expect("inner"))
                .join()
                .expect("outer")
        })
        .expect("scope");
        assert_eq!(n, 42);
    }
}
