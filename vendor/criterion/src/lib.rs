//! Offline stand-in for the `criterion` crate.
//!
//! Provides the same call surface the workspace's benches use —
//! `Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — but with a plain
//! wall-clock measurement loop instead of criterion's statistical
//! machinery: a short warm-up, then `sample_size` timed samples, then a
//! one-line `min/median/max` report per benchmark.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Identifies a benchmark within a group: `function_id/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, like criterion's
    /// `"sat/s1423"`.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Passed to the measured closure; `iter` runs and times the payload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` runs of `routine` after one warm-up run.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    b.samples.sort();
    if b.samples.is_empty() {
        println!("bench {label}: no samples");
        return;
    }
    let min = b.samples[0];
    let max = b.samples[b.samples.len() - 1];
    let median = b.samples[b.samples.len() / 2];
    println!(
        "bench {label}: min {min:?} / median {median:?} / max {max:?} ({} samples)",
        b.samples.len()
    );
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl<'c> BenchmarkGroup<'c> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` with `input`, labeled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmarks `f`, labeled by `id` within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Ends the group (report-per-bench already printed).
    pub fn finish(self) {}
}

/// Entry point handed to each registered bench function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), DEFAULT_SAMPLE_SIZE, &mut f);
        self
    }
}

/// Bundles bench functions under one name, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("f", 7), &7u64, |b, &x| {
            b.iter(|| x * 2);
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
        c.bench_function("top", |b| b.iter(|| ()));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_and_bencher_run() {
        benches();
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("sat", "s1423").label, "sat/s1423");
        assert_eq!(BenchmarkId::from_parameter(8).label, "8");
    }
}
