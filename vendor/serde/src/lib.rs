//! Offline stand-in for the `serde` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! a serde look-alike sized to what it uses: `#[derive(Serialize,
//! Deserialize)]` on plain structs and on enums with unit or struct
//! variants, plus impls for the standard types that appear in reports and
//! bench rows. Instead of serde's visitor-based data model, values pass
//! through an owned JSON-shaped [`Content`] tree; `serde_json` (also
//! vendored) renders and parses that tree. Formats match real
//! `serde_json`: maps for structs, externally tagged enums, `Duration` as
//! `{"secs", "nanos"}`, tuples as arrays, `None` as `null`.
//!
//! Supported field attribute: `#[serde(skip)]` (field omitted on
//! serialize, `Default::default()` on deserialize). Anything else is a
//! compile error rather than a silent behavior change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// An owned, JSON-shaped value — this crate's entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Negative integer (always `< 0`; non-negatives normalize to `U64`).
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object, insertion-ordered.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The object entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// "expected X while deserializing Y, found Z" constructor.
    pub fn expected(what: &str, ty: &str, found: &Content) -> Self {
        DeError(format!(
            "expected {what} while deserializing {ty}, found {}",
            found.kind()
        ))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Content`] model.
pub trait Serialize {
    /// Converts `self` into a content tree.
    fn to_content(&self) -> Content;
}

/// Deserialization from the [`Content`] model.
pub trait Deserialize: Sized {
    /// Rebuilds a value from a content tree.
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

/// Looks up `name` in a struct's entries and deserializes it; a missing
/// key reads as `null`, which lets `Option` fields default to `None`.
pub fn field<T: Deserialize>(map: &[(String, Content)], name: &str) -> Result<T, DeError> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_content(v).map_err(|e| DeError(format!("field `{name}`: {}", e.0))),
        None => {
            T::from_content(&Content::Null).map_err(|_| DeError(format!("missing field `{name}`")))
        }
    }
}

/// Like [`field`], but an absent key yields `T::default()` — the backing
/// for `#[serde(default)]`, so old serialized snapshots stay readable
/// after a struct grows new fields.
pub fn field_or_default<T: Deserialize + Default>(
    map: &[(String, Content)],
    name: &str,
) -> Result<T, DeError> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_content(v).map_err(|e| DeError(format!("field `{name}`: {}", e.0))),
        None => Ok(T::default()),
    }
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", "bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = match c {
                    Content::U64(v) => *v,
                    other => return Err(DeError::expected("unsigned integer", stringify!($t), other)),
                };
                <$t>::try_from(v).map_err(|_| DeError(format!(
                    "{v} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v < 0 { Content::I64(v) } else { Content::U64(v as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v: i64 = match c {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| DeError(format!("{v} out of range for i64")))?,
                    other => return Err(DeError::expected("integer", stringify!($t), other)),
                };
                <$t>::try_from(v).map_err(|_| DeError(format!(
                    "{v} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::F64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    other => Err(DeError::expected("number", stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", "String", other)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(s) => s.iter().map(T::from_content).collect(),
            other => Err(DeError::expected("array", "Vec", other)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            other => Err(DeError::expected("object", "BTreeMap", other)),
        }
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<String, V, S> {
    fn to_content(&self) -> Content {
        // Deterministic output: sort keys like a BTreeMap would.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Content::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+),)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                const LEN: usize = [$($idx),+].len();
                let s = c.as_seq().ok_or_else(|| DeError::expected("array", "tuple", c))?;
                if s.len() != LEN {
                    return Err(DeError(format!(
                        "expected array of length {LEN}, found {}", s.len()
                    )));
                }
                Ok(($($name::from_content(&s[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
}

impl Serialize for Duration {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("secs".to_owned(), Content::U64(self.as_secs())),
            (
                "nanos".to_owned(),
                Content::U64(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Deserialize for Duration {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let m = c
            .as_map()
            .ok_or_else(|| DeError::expected("object", "Duration", c))?;
        let secs: u64 = field(m, "secs")?;
        let nanos: u32 = field(m, "nanos")?;
        Ok(Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_content(&42u64.to_content()), Ok(42));
        assert_eq!(i32::from_content(&(-7i32).to_content()), Ok(-7));
        assert_eq!(bool::from_content(&true.to_content()), Ok(true));
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()),
            Ok("hi".to_string())
        );
        assert_eq!(Option::<u64>::from_content(&Content::Null), Ok(None));
    }

    #[test]
    #[allow(clippy::type_complexity)]
    fn tuples_and_vecs_round_trip() {
        let v: Vec<((usize, usize), Vec<(usize, usize)>)> = vec![((1, 2), vec![(3, 4), (5, 6)])];
        let back = Vec::from_content(&v.to_content()).expect("round trip");
        assert_eq!(v, back);
    }

    #[test]
    fn duration_matches_serde_json_shape() {
        let d = Duration::new(3, 250);
        let c = d.to_content();
        let m = c.as_map().expect("map");
        assert_eq!(m[0].0, "secs");
        assert_eq!(m[1].0, "nanos");
        assert_eq!(Duration::from_content(&c), Ok(d));
    }

    #[test]
    fn missing_field_is_null_for_options_error_for_values() {
        let m: Vec<(String, Content)> = vec![];
        assert_eq!(field::<Option<u64>>(&m, "x"), Ok(None));
        assert!(field::<u64>(&m, "x").is_err());
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_content(&Content::U64(300)).is_err());
        assert!(u64::from_content(&Content::I64(-1)).is_err());
    }
}
