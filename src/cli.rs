//! Command-line front end logic (shared by the `mcpath` binary and its
//! tests).
//!
//! Subcommands:
//!
//! * `analyze <file.bench>` — run the multi-cycle FF-pair analysis and
//!   print the verdict list plus per-step statistics;
//! * `hazard <file.bench>` — analyze, then validate the multi-cycle pairs
//!   against static hazards with both criteria;
//! * `kcycle <file.bench> --max-k <K>` — sweep the cycle budget and report
//!   each pair's maximal verified budget;
//! * `stats <file>` — for a `.bench` file, parse and print structural
//!   statistics; for a saved JSON report or an NDJSON run ledger,
//!   pretty-print the observability data as a Table-2-style per-step
//!   table;
//! * `stats --compare <old> <new> [--threshold <pct>]` — diff the
//!   deterministic counters of two artifacts (reports, ledgers, metrics
//!   snapshots or BENCH tables) and exit non-zero on regressions;
//! * `trace <ledger.ndjson|report.json>` — export the captured span tree
//!   as Chrome trace-event JSON (Perfetto / `chrome://tracing`);
//! * `shard <file.bench> --shard <I/N> --trace-out <ledger>` — verify one
//!   shard of the deterministic pair partition and journal its verdicts
//!   (the ledger *is* the shard's output; `--resume` restarts a killed
//!   shard from its own journal);
//! * `merge <file.bench> <shard1.ndjson> ...` — combine the per-shard
//!   ledgers of one run into the canonical report, refusing missing,
//!   duplicate, foreign or incomplete shards;
//! * `gen <suite-name>` — emit a synthetic suite circuit as `.bench` text
//!   (so external tools can consume the benchmark suite);
//! * `lint <file.bench> [--format text|json]` — run the full `mcp-lint`
//!   rule set (parsing permissively, so corrupt netlists are diagnosed
//!   rather than rejected) and exit non-zero on error-level findings;
//!   `--deny`/`--allow` escalate or disable individual rules, and
//!   `--max-diags` caps the rendered finding list.
//!
//! Options: `--engine implication|sat|bdd`, `--cycles K`, `--backtracks N`,
//! `--learn`, `--threads N`, `--scheduler steal|static`, `--no-sim`,
//! `--sim-lanes 64|128|256|512`, `--no-tape`, `--no-self-pairs`,
//! `--no-lint`, `--no-slice`, `--no-static-classify`, `--deny <rule>`,
//! `--allow <rule>`, `--max-diags <n>`, `--json <path>`, `--canonical`,
//! `--resume <ledger>`, `--shard <I/N>`, `--shards <N>`,
//! `--format text|json|chrome`, `--metrics`, `--trace-out <path>`,
//! `--progress`, `--quiet`, `--compare <old> <new>`, `--threshold <pct>`.

use mcp_core::{
    analyze, analyze_resume_with, analyze_with, check_hazards, max_cycle_budgets,
    merge_shards_with, sensitization_dependencies, to_sdc, CycleBudget, Engine, HazardCheck,
    McConfig, McReport, PairClass, Scheduler, SdcOptions, ShardSpec, Step, StepStats,
};
use mcp_netlist::{bench, Netlist};
use mcp_obs::{
    chrome_trace, chrome_trace_from_totals, compare_artifacts, read_journal_file,
    read_ledger_resilient_file, CompareConfig, FileSink, Ledger, MetricsSnapshot, ObsCtx,
    PairEvent,
};
use std::fmt::Write as _;
use std::time::Duration;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Command {
    /// The subcommand and its positional payload.
    pub action: Action,
    /// Engine selection.
    pub engine: Engine,
    /// Cycle budget.
    pub cycles: u32,
    /// ATPG backtrack limit.
    pub backtracks: u64,
    /// Enable static learning.
    pub learn: bool,
    /// Worker threads.
    pub threads: usize,
    /// Pair-loop scheduling policy.
    pub scheduler: Scheduler,
    /// Disable the random-simulation prefilter.
    pub no_sim: bool,
    /// Simulation lane width of the prefilter's compiled kernel
    /// (64, 128, 256 or 512); `None` keeps the default (256, or the
    /// `MCPATH_SIM_LANES` env var).
    pub sim_lanes: Option<u32>,
    /// Run the prefilter on the graph-walking reference simulator
    /// instead of the compiled tape kernel (A/B escape hatch; the
    /// outcome is byte-identical).
    pub no_tape: bool,
    /// Exclude self pairs.
    pub no_self_pairs: bool,
    /// Skip the pre-analysis structural lint gate.
    pub no_lint: bool,
    /// Run the engines on the whole-circuit expansion instead of per
    /// sink-group cone slices (A/B escape hatch; verdicts are identical).
    pub no_slice: bool,
    /// Skip the dataflow pre-pass that statically classifies pairs whose
    /// sink FF is provably frozen (A/B escape hatch; the canonical report
    /// is byte-identical either way).
    pub no_static_classify: bool,
    /// Lint rule ids escalated to error severity (`--deny`, repeatable).
    pub deny: Vec<String>,
    /// Lint rule ids disabled entirely (`--allow`, repeatable).
    pub allow: Vec<String>,
    /// Cap on the findings the `lint` subcommand renders (`--max-diags`).
    pub max_diags: Option<usize>,
    /// Output format of the `lint` and `trace` subcommands.
    pub format: OutputFormat,
    /// Optional JSON report path.
    pub json: Option<String>,
    /// Write the `--json` report in canonical form (wall-clock and
    /// machine-dependent fields projected out) for byte comparison.
    pub canonical: bool,
    /// Resume `analyze` from a prior run's NDJSON ledger.
    pub resume: Option<String>,
    /// Which slice of the deterministic pair partition this process
    /// verifies (`--shard I/N`; the `shard` subcommand requires it).
    pub shard: Option<(u64, u64)>,
    /// Driver mode for `analyze`: fork `--shards N` child `shard`
    /// processes over the pair partition and merge their ledgers.
    pub shards: Option<u64>,
    /// Print engine counters and span timings after the analysis.
    pub metrics: bool,
    /// Optional NDJSON run-ledger path.
    pub trace_out: Option<String>,
    /// Report pair-loop progress on stderr while analyzing.
    pub progress: bool,
    /// Regression threshold (percent) for `stats --compare`.
    pub threshold: f64,
    /// Suppress the pair listing.
    pub quiet: bool,
}

/// Output format of the `lint` and `trace` subcommands.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum OutputFormat {
    /// One line per finding plus a summary line (`lint` only).
    #[default]
    Text,
    /// Machine-readable JSON ([`mcp_lint::Diagnostics`] for `lint`).
    Json,
    /// Chrome trace-event JSON (`trace` only).
    Chrome,
}

/// What to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Analyze a `.bench` file.
    Analyze(String),
    /// Analyze + hazard-check a `.bench` file.
    Hazard(String),
    /// Analyze + report the cross-pair dependencies of the
    /// sensitization-validated multi-cycle pairs.
    Deps(String),
    /// Cycle-budget sweep on a `.bench` file up to the given `k`.
    Kcycle(String, u32),
    /// Verify one shard of a `.bench` file's pair partition, journaling
    /// the verdicts to `--trace-out`.
    Shard(String),
    /// Merge per-shard NDJSON ledgers into the canonical report.
    Merge {
        /// The `.bench` file the shards analyzed.
        path: String,
        /// One ledger path per shard (any order).
        ledgers: Vec<String>,
    },
    /// Print structural statistics of a `.bench` file.
    Stats(String),
    /// Diff the deterministic counters of two artifacts.
    Compare {
        /// Baseline artifact path.
        old: String,
        /// Candidate artifact path.
        new: String,
    },
    /// Export an artifact's span tree as Chrome trace-event JSON.
    Trace(String),
    /// Emit a synthetic suite circuit as `.bench`.
    Gen(String),
    /// Simplify a `.bench` file (constant sweep, CSE, dead logic) and
    /// emit the result.
    Sweep(String),
    /// Render a `.bench` file as Graphviz DOT.
    Dot(String),
    /// Run the static-analysis rules on a `.bench` file.
    Lint(String),
    /// Analyze and emit SDC `set_multicycle_path` constraints.
    Sdc {
        /// The `.bench` file.
        path: String,
        /// Constrain only hazard-robust pairs (using this criterion).
        robust: Option<HazardCheck>,
    },
    /// Hunt for a dynamic glitch on a specific pair and dump a VCD.
    Glitch {
        /// The `.bench` file.
        path: String,
        /// Source and sink FF names.
        src: String,
        /// Sink FF name.
        dst: String,
        /// VCD output path.
        out: String,
    },
    /// Print usage.
    Help,
}

/// Error from command-line parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCliError(pub String);

impl std::fmt::Display for ParseCliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseCliError {}

/// Usage text.
pub const USAGE: &str = "\
mcpath — implication-based multi-cycle FF-pair detection (DAC 2002)

USAGE:
  mcpath analyze <file.bench> [options]
  mcpath hazard  <file.bench> [options]
  mcpath deps    <file.bench> [options]
  mcpath kcycle  <file.bench> --max-k <K> [options]
  mcpath shard   <file.bench> --shard <I/N> --trace-out <ledger.ndjson>
                 [--resume <ledger.ndjson>] [options]
  mcpath merge   <file.bench> <shard0.ndjson> [<shard1.ndjson> ...] [options]
  mcpath stats   <file.bench|report.json|ledger.ndjson>
  mcpath stats   --compare <old> <new> [--threshold <pct>]
  mcpath trace   <ledger.ndjson|report.json> [--format chrome]
  mcpath gen     <m27|m298|...|m38584>
  mcpath dot     <file.bench>
  mcpath sweep   <file.bench>
  mcpath sdc     <file.bench> [--robust sens|cosens] [options]
  mcpath glitch  <file.bench> <srcFF> <dstFF> <out.vcd>
  mcpath lint    <file.bench> [--format text|json] [--deny <rule>]
                 [--allow <rule>] [--max-diags <n>]

OPTIONS:
  --engine implication|sat|bdd   decision engine (default: implication)
  --cycles <K>                   cycle budget (default: 2)
  --backtracks <N>               ATPG backtrack limit (default: 50)
  --learn                        enable SOCRATES-style static learning
  --threads <N>                  parallel pair workers (default: 1)
  --scheduler steal|static       pair scheduling policy (default: steal)
  --no-sim                       skip the random-simulation prefilter
  --sim-lanes 64|128|256|512     prefilter patterns per pass (default: 256);
                                 the outcome is identical at every width
  --no-tape                      prefilter on the graph-walking reference
                                 simulator instead of the compiled kernel
  --no-self-pairs                exclude (FFi, FFi) pairs ([9]'s convention)
  --no-lint                      analyze even if structural lints fail
  --no-slice                     engines run on the whole-circuit expansion
                                 instead of per-sink-group cone slices
  --no-static-classify           skip the dataflow pre-pass that resolves
                                 pairs with provably frozen sink FFs
  --deny <rule>                  escalate a lint rule to error severity
                                 (repeatable; `lint` only)
  --allow <rule>                 disable a lint rule entirely
                                 (repeatable; `lint` only)
  --max-diags <n>                cap the findings `lint` renders
  --format text|json|chrome      lint/trace output format
  --json <path>                  dump the report as JSON
  --canonical                    write the --json report in canonical form
                                 (timings zeroed; byte-comparable)
  --resume <ledger.ndjson>       restart analyze from a prior run's ledger,
                                 re-verifying only the unresolved pairs
  --shard <I/N>                  verify shard I of the N-way deterministic
                                 pair partition (the `shard` subcommand)
  --shards <N>                   analyze by forking N `shard` child
                                 processes and merging their ledgers
  --metrics                      print engine counters and span timings
  --trace-out <path>             write the NDJSON run ledger (header, one
                                 record per pair, timestamped span tree)
  --progress                     report pair-loop progress on stderr
  --compare <old> <new>          diff two artifacts' deterministic counters
  --threshold <pct>              counter growth tolerated by --compare
                                 before it counts as a regression (default 0)
  --quiet                        omit the per-pair listing
";

/// Parses raw arguments (without the program name).
///
/// # Errors
///
/// Returns [`ParseCliError`] with a human-readable message on malformed
/// input.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Command, ParseCliError> {
    let mut args = args.into_iter().peekable();
    let sub = args
        .next()
        .ok_or_else(|| ParseCliError("missing subcommand (try `mcpath help`)".into()))?;

    let mut positional: Vec<String> = Vec::new();
    let mut engine = Engine::Implication;
    let mut cycles = 2u32;
    let mut backtracks = 50u64;
    let mut learn = false;
    let mut threads = 1usize;
    let mut scheduler = Scheduler::default();
    let mut no_sim = false;
    let mut sim_lanes: Option<u32> = None;
    let mut no_tape = false;
    let mut no_self_pairs = false;
    let mut no_lint = false;
    let mut no_slice = false;
    let mut no_static_classify = false;
    let mut deny: Vec<String> = Vec::new();
    let mut allow: Vec<String> = Vec::new();
    let mut max_diags: Option<usize> = None;
    let mut format: Option<OutputFormat> = None;
    let mut json = None;
    let mut canonical = false;
    let mut resume = None;
    let mut shard: Option<(u64, u64)> = None;
    let mut shards: Option<u64> = None;
    let mut metrics = false;
    let mut trace_out = None;
    let mut progress = false;
    let mut threshold = 0.0f64;
    let mut compare: Option<(String, String)> = None;
    let mut quiet = false;
    let mut max_k: Option<u32> = None;
    let mut robust_check: Option<HazardCheck> = None;

    let take_value = |args: &mut std::iter::Peekable<I::IntoIter>,
                      flag: &str|
     -> Result<String, ParseCliError> {
        args.next()
            .ok_or_else(|| ParseCliError(format!("`{flag}` needs a value")))
    };

    while let Some(a) = args.next() {
        match a.as_str() {
            "--engine" => {
                engine = match take_value(&mut args, "--engine")?.as_str() {
                    "implication" => Engine::Implication,
                    "sat" => Engine::Sat,
                    "bdd" => Engine::Bdd {
                        node_limit: 1 << 22,
                        reachability: false,
                    },
                    other => {
                        return Err(ParseCliError(format!("unknown engine `{other}`")));
                    }
                }
            }
            "--cycles" => {
                cycles = take_value(&mut args, "--cycles")?
                    .parse()
                    .map_err(|e| ParseCliError(format!("bad --cycles: {e}")))?;
            }
            "--backtracks" => {
                backtracks = take_value(&mut args, "--backtracks")?
                    .parse()
                    .map_err(|e| ParseCliError(format!("bad --backtracks: {e}")))?;
            }
            "--max-k" => {
                max_k = Some(
                    take_value(&mut args, "--max-k")?
                        .parse()
                        .map_err(|e| ParseCliError(format!("bad --max-k: {e}")))?,
                );
            }
            "--threads" => {
                threads = take_value(&mut args, "--threads")?
                    .parse()
                    .map_err(|e| ParseCliError(format!("bad --threads: {e}")))?;
            }
            "--scheduler" => {
                scheduler = match take_value(&mut args, "--scheduler")?.as_str() {
                    "steal" | "work-steal" => Scheduler::WorkSteal,
                    "static" => Scheduler::Static,
                    other => {
                        return Err(ParseCliError(format!("unknown scheduler `{other}`")));
                    }
                }
            }
            "--json" => json = Some(take_value(&mut args, "--json")?),
            "--format" => {
                format = Some(match take_value(&mut args, "--format")?.as_str() {
                    "text" => OutputFormat::Text,
                    "json" => OutputFormat::Json,
                    "chrome" => OutputFormat::Chrome,
                    other => {
                        return Err(ParseCliError(format!("unknown format `{other}`")));
                    }
                })
            }
            "--trace-out" => trace_out = Some(take_value(&mut args, "--trace-out")?),
            "--resume" => resume = Some(take_value(&mut args, "--resume")?),
            "--shard" => {
                let v = take_value(&mut args, "--shard")?;
                let parsed = v
                    .split_once('/')
                    .and_then(|(i, n)| Some((i.parse::<u64>().ok()?, n.parse::<u64>().ok()?)));
                shard = Some(parsed.ok_or_else(|| {
                    ParseCliError(format!("bad --shard `{v}` (expected I/N, e.g. 0/4)"))
                })?);
            }
            "--shards" => {
                shards = Some(
                    take_value(&mut args, "--shards")?
                        .parse()
                        .map_err(|e| ParseCliError(format!("bad --shards: {e}")))?,
                );
            }
            "--compare" => {
                let old = take_value(&mut args, "--compare")?;
                let new = args
                    .next()
                    .ok_or_else(|| ParseCliError("`--compare` needs two artifact paths".into()))?;
                compare = Some((old, new));
            }
            "--threshold" => {
                threshold = take_value(&mut args, "--threshold")?
                    .parse()
                    .map_err(|e| ParseCliError(format!("bad --threshold: {e}")))?;
            }
            "--robust" => {
                robust_check = Some(match take_value(&mut args, "--robust")?.as_str() {
                    "sensitization" | "sens" => HazardCheck::Sensitization,
                    "co-sensitization" | "cosens" => HazardCheck::CoSensitization,
                    other => {
                        return Err(ParseCliError(format!("unknown criterion `{other}`")));
                    }
                })
            }
            "--sim-lanes" => {
                sim_lanes = Some(
                    take_value(&mut args, "--sim-lanes")?
                        .parse()
                        .map_err(|e| ParseCliError(format!("bad --sim-lanes: {e}")))?,
                );
            }
            "--learn" => learn = true,
            "--canonical" => canonical = true,
            "--metrics" => metrics = true,
            "--progress" => progress = true,
            "--no-sim" => no_sim = true,
            "--no-tape" => no_tape = true,
            "--no-self-pairs" => no_self_pairs = true,
            "--no-lint" => no_lint = true,
            "--no-slice" => no_slice = true,
            "--no-static-classify" => no_static_classify = true,
            "--deny" => deny.push(take_value(&mut args, "--deny")?),
            "--allow" => allow.push(take_value(&mut args, "--allow")?),
            "--max-diags" => {
                max_diags = Some(
                    take_value(&mut args, "--max-diags")?
                        .parse()
                        .map_err(|e| ParseCliError(format!("bad --max-diags: {e}")))?,
                );
            }
            "--quiet" => quiet = true,
            other if other.starts_with("--") => {
                return Err(ParseCliError(format!("unknown option `{other}`")));
            }
            _ => positional.push(a),
        }
    }

    let one_positional = |what: &str| -> Result<String, ParseCliError> {
        match positional.as_slice() {
            [p] => Ok(p.clone()),
            [] => Err(ParseCliError(format!("`{sub}` needs {what}"))),
            _ => Err(ParseCliError(format!("`{sub}` takes exactly one {what}"))),
        }
    };

    let action = match sub.as_str() {
        "analyze" => Action::Analyze(one_positional("a .bench file")?),
        "hazard" => Action::Hazard(one_positional("a .bench file")?),
        "deps" => Action::Deps(one_positional("a .bench file")?),
        "kcycle" => Action::Kcycle(
            one_positional("a .bench file")?,
            max_k.ok_or_else(|| ParseCliError("`kcycle` needs --max-k <K>".into()))?,
        ),
        "shard" => {
            if shard.is_none() {
                return Err(ParseCliError(
                    "`shard` needs --shard <I/N> (e.g. --shard 0/4)".into(),
                ));
            }
            if trace_out.is_none() {
                return Err(ParseCliError(
                    "`shard` needs --trace-out <ledger.ndjson>: the journal is the \
                     shard's output (`merge` consumes it)"
                        .into(),
                ));
            }
            Action::Shard(one_positional("a .bench file")?)
        }
        "merge" => match positional.as_slice() {
            [path, rest @ ..] if !rest.is_empty() => Action::Merge {
                path: path.clone(),
                ledgers: rest.to_vec(),
            },
            _ => {
                return Err(ParseCliError(
                    "`merge` needs: <file.bench> <shard0.ndjson> [<shard1.ndjson> ...]".into(),
                ))
            }
        },
        "stats" => match &compare {
            Some((old, new)) => {
                if !positional.is_empty() {
                    return Err(ParseCliError(
                        "`stats --compare` takes no positional file".into(),
                    ));
                }
                Action::Compare {
                    old: old.clone(),
                    new: new.clone(),
                }
            }
            None => Action::Stats(one_positional("a .bench file")?),
        },
        "trace" => Action::Trace(one_positional("a ledger or report file")?),
        "gen" => Action::Gen(one_positional("a suite circuit name")?),
        "sweep" => Action::Sweep(one_positional("a .bench file")?),
        "dot" => Action::Dot(one_positional("a .bench file")?),
        "lint" => Action::Lint(one_positional("a .bench file")?),
        "sdc" => Action::Sdc {
            path: one_positional("a .bench file")?,
            robust: robust_check,
        },
        "glitch" => match positional.as_slice() {
            [path, src, dst, out] => Action::Glitch {
                path: path.clone(),
                src: src.clone(),
                dst: dst.clone(),
                out: out.clone(),
            },
            _ => {
                return Err(ParseCliError(
                    "`glitch` needs: <file.bench> <srcFF> <dstFF> <out.vcd>".into(),
                ))
            }
        },
        "help" | "--help" | "-h" => Action::Help,
        other => return Err(ParseCliError(format!("unknown subcommand `{other}`"))),
    };

    // The driver forks fresh shard processes; a prior ledger belongs to
    // one shard, not to the whole partition.
    if shards.is_some() && resume.is_some() {
        return Err(ParseCliError(
            "`--shards` cannot be combined with `--resume` (restart the killed shard \
             with `mcpath shard --resume`, then `mcpath merge`)"
                .into(),
        ));
    }
    if let Some(count) = shards {
        if count == 0 {
            return Err(ParseCliError("`--shards` needs at least 1".into()));
        }
    }

    // `trace` defaults to the only format it supports; everything else
    // keeps the historical text default.
    let format = format.unwrap_or(match action {
        Action::Trace(_) => OutputFormat::Chrome,
        _ => OutputFormat::Text,
    });

    Ok(Command {
        action,
        engine,
        cycles,
        backtracks,
        learn,
        threads,
        scheduler,
        no_sim,
        sim_lanes,
        no_tape,
        no_self_pairs,
        no_lint,
        no_slice,
        no_static_classify,
        deny,
        allow,
        max_diags,
        format,
        json,
        canonical,
        resume,
        shard,
        shards,
        metrics,
        trace_out,
        progress,
        threshold,
        quiet,
    })
}

impl Command {
    /// Builds the observability context requested by `--trace-out` /
    /// `--progress`.
    fn obs(&self) -> Result<ObsCtx, String> {
        let mut obs = ObsCtx::new();
        if let Some(p) = &self.trace_out {
            let sink = FileSink::create(p).map_err(|e| format!("create `{p}`: {e}"))?;
            obs = obs.with_sink(Box::new(sink));
        }
        if self.progress {
            obs = obs.with_progress(Duration::from_millis(200));
        }
        Ok(obs)
    }

    fn config(&self) -> McConfig {
        let defaults = McConfig::default();
        let mut sim = defaults.sim;
        if let Some(lanes) = self.sim_lanes {
            // Validation happens in `analyze` (AnalyzeError::InvalidSimLanes)
            // so env- and flag-sourced values get the same diagnostics.
            sim.lanes = lanes;
        }
        // The flag can only disable the tape; the default (normally on)
        // also honors the MCPATH_NO_TAPE env var.
        sim.tape = sim.tape && !self.no_tape;
        McConfig {
            sim,
            engine: self.engine,
            cycles: self.cycles,
            backtrack_limit: self.backtracks,
            static_learning: self.learn,
            threads: self.threads,
            scheduler: self.scheduler,
            use_sim_filter: !self.no_sim,
            include_self_pairs: !self.no_self_pairs,
            lint: !self.no_lint,
            // The flag can only disable slicing; the default (normally
            // on) also honors the MCPATH_NO_SLICE env var.
            slice: defaults.slice && !self.no_slice,
            // Same pattern for the dataflow pre-pass and the
            // MCPATH_NO_STATIC_CLASSIFY env var.
            static_classify: defaults.static_classify && !self.no_static_classify,
            shard: self.shard.map(|(index, count)| ShardSpec { index, count }),
            ..defaults
        }
    }

    /// The flags a forked `shard` child must inherit so its config
    /// fingerprint (and its verdict-neutral scheduling knobs) match the
    /// parent `analyze --shards` invocation.
    fn child_flags(&self) -> Vec<String> {
        let mut flags: Vec<String> = Vec::new();
        let mut push = |f: &str| flags.push(f.to_owned());
        match self.engine {
            Engine::Implication => {}
            Engine::Sat => {
                push("--engine");
                push("sat");
            }
            Engine::Bdd { .. } => {
                push("--engine");
                push("bdd");
            }
        }
        push("--cycles");
        push(&self.cycles.to_string());
        push("--backtracks");
        push(&self.backtracks.to_string());
        if self.learn {
            push("--learn");
        }
        push("--threads");
        push(&self.threads.to_string());
        push("--scheduler");
        push(match self.scheduler {
            Scheduler::WorkSteal => "steal",
            Scheduler::Static => "static",
        });
        if self.no_sim {
            push("--no-sim");
        }
        if let Some(lanes) = self.sim_lanes {
            push("--sim-lanes");
            push(&lanes.to_string());
        }
        if self.no_tape {
            push("--no-tape");
        }
        if self.no_self_pairs {
            push("--no-self-pairs");
        }
        if self.no_lint {
            push("--no-lint");
        }
        if self.no_slice {
            push("--no-slice");
        }
        if self.no_static_classify {
            push("--no-static-classify");
        }
        push("--quiet");
        flags
    }
}

fn load(path: &str) -> Result<Netlist, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    bench::parse(path, &text).map_err(|e| e.to_string())
}

fn pair_name(nl: &Netlist, i: usize, j: usize) -> String {
    format!(
        "({}, {})",
        nl.node(nl.dffs()[i]).name(),
        nl.node(nl.dffs()[j]).name()
    )
}

/// Executes a parsed command, writing human-readable output into a string
/// (returned on success; errors are returned as strings for the binary to
/// print to stderr).
///
/// # Errors
///
/// Returns a message when the input file cannot be read or parsed, or the
/// configuration is invalid.
pub fn run(cmd: &Command) -> Result<String, String> {
    let mut out = String::new();
    match &cmd.action {
        Action::Help => out.push_str(USAGE),
        Action::Stats(path) => {
            if path.ends_with(".ndjson") {
                let events = read_journal_file(path)
                    .map_err(|e| format!("cannot read journal `{path}`: {e}"))?;
                out.push_str(&render_journal(&events));
            } else if path.ends_with(".json") {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read `{path}`: {e}"))?;
                out.push_str(&render_saved_report(path, &text)?);
            } else {
                let nl = load(path)?;
                let s = nl.stats();
                let _ = writeln!(
                    out,
                    "{}: inputs={} outputs={} ffs={} gates={} depth={} ff_pairs={}",
                    nl.name(),
                    s.inputs,
                    s.outputs,
                    s.ffs,
                    s.gates,
                    nl.depth(),
                    s.ff_pairs
                );
            }
        }
        Action::Compare { old, new } => {
            let old_text =
                std::fs::read_to_string(old).map_err(|e| format!("cannot read `{old}`: {e}"))?;
            let new_text =
                std::fs::read_to_string(new).map_err(|e| format!("cannot read `{new}`: {e}"))?;
            let cmp = compare_artifacts(
                &old_text,
                &new_text,
                CompareConfig {
                    threshold_pct: cmd.threshold,
                },
            )
            .map_err(|e| e.to_string())?;
            let rendered = cmp.render();
            // Regressions fail the command (exit code 1) so CI can gate
            // directly on `mcpath stats --compare`.
            if cmp.regressions() > 0 {
                return Err(format!("counter regression(s) detected:\n{rendered}"));
            }
            out.push_str(&rendered);
        }
        Action::Trace(path) => {
            if cmd.format != OutputFormat::Chrome {
                return Err("`trace` only supports --format chrome".into());
            }
            let doc = if path.ends_with(".ndjson") {
                let ledger = read_ledger_resilient_file(path)
                    .map_err(|e| format!("cannot read ledger `{path}`: {e}"))?;
                if ledger.spans.is_empty() {
                    return Err(format!(
                        "`{path}` carries no span events — the span tree is written \
                         when the run completes (re-run `analyze --trace-out` to the \
                         end, or `trace` the saved report for span totals)"
                    ));
                }
                chrome_trace(&ledger.spans)
            } else {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read `{path}`: {e}"))?;
                // Saved artifacts carry only span *totals*; degrade to a
                // proportional single-track layout.
                if let Ok(report) = serde_json::from_str::<McReport>(&text) {
                    chrome_trace_from_totals(&report.metrics.spans)
                } else if let Ok(snap) = serde_json::from_str::<MetricsSnapshot>(&text) {
                    chrome_trace_from_totals(&snap.spans)
                } else {
                    return Err(format!(
                        "`{path}` is neither an NDJSON ledger, a saved analyze \
                         report, nor a metrics snapshot"
                    ));
                }
            };
            let text = serde_json::to_string_pretty(&doc).map_err(|e| format!("serialize: {e}"))?;
            out.push_str(&text);
            out.push('\n');
        }
        Action::Gen(name) => {
            let nl = mcp_gen::suite::standard_suite()
                .into_iter()
                .find(|n| n.name() == name)
                .ok_or_else(|| format!("unknown suite circuit `{name}` (try m27..m38584)"))?;
            out.push_str(&bench::to_bench(&nl));
        }
        Action::Analyze(path) => {
            let nl = load(path)?;
            if let Some(count) = cmd.shards {
                let report = run_sharded(cmd, path, &nl, count, &mut out)?;
                append_report(&mut out, cmd, &nl, &report)?;
            } else {
                // Read the resume ledger *before* `obs()` opens
                // `--trace-out`: resuming a run onto its own ledger path
                // is the natural CLI usage, and `FileSink::create`
                // truncates. Resilient read, so a final line torn by the
                // SIGKILL doesn't block the restart.
                let resume_ledger: Option<Ledger> = match &cmd.resume {
                    Some(p) => Some(
                        read_ledger_resilient_file(p)
                            .map_err(|e| format!("cannot read ledger `{p}`: {e}"))?,
                    ),
                    None => None,
                };
                let obs = cmd.obs()?;
                let report = match &resume_ledger {
                    Some(ledger) => analyze_resume_with(&nl, &cmd.config(), &obs, ledger),
                    None => analyze_with(&nl, &cmd.config(), &obs),
                }
                .map_err(|e| e.to_string())?;
                if resume_ledger.is_some() {
                    let _ = writeln!(
                        out,
                        "resumed: {} verdicts restored from the ledger",
                        obs.snapshot().counters.resume_pairs_loaded
                    );
                }
                append_report(&mut out, cmd, &nl, &report)?;
            }
        }
        Action::Shard(path) => {
            let (index, count) = cmd
                .shard
                .ok_or_else(|| "`shard` needs --shard <I/N>".to_owned())?;
            let nl = load(path)?;
            // Same ordering constraint as `analyze --resume`: a killed
            // shard restarts onto its own ledger path, which `obs()`
            // truncates on open.
            let resume_ledger: Option<Ledger> = match &cmd.resume {
                Some(p) => Some(
                    read_ledger_resilient_file(p)
                        .map_err(|e| format!("cannot read ledger `{p}`: {e}"))?,
                ),
                None => None,
            };
            let obs = cmd.obs()?;
            let report = match &resume_ledger {
                Some(ledger) => analyze_resume_with(&nl, &cmd.config(), &obs, ledger),
                None => analyze_with(&nl, &cmd.config(), &obs),
            }
            .map_err(|e| e.to_string())?;
            let counters = obs.snapshot().counters;
            if resume_ledger.is_some() {
                let _ = writeln!(
                    out,
                    "resumed: {} verdicts restored from the ledger",
                    counters.resume_pairs_loaded
                );
            }
            let _ = writeln!(
                out,
                "shard {index}/{count}: owns {} of {} surviving pairs",
                counters.shard_pairs_owned,
                counters.shard_pairs_owned + counters.shard_pairs_skipped
            );
            append_report(&mut out, cmd, &nl, &report)?;
        }
        Action::Merge { path, ledgers } => {
            let nl = load(path)?;
            let mut parsed = Vec::with_capacity(ledgers.len());
            for p in ledgers {
                parsed.push(
                    read_ledger_resilient_file(p)
                        .map_err(|e| format!("cannot read ledger `{p}`: {e}"))?,
                );
            }
            let obs = cmd.obs()?;
            let report =
                merge_shards_with(&nl, &cmd.config(), &obs, &parsed).map_err(|e| e.to_string())?;
            let _ = writeln!(
                out,
                "merged: {} shard ledgers, {} verdicts restored",
                parsed.len(),
                obs.snapshot().counters.resume_pairs_loaded
            );
            append_report(&mut out, cmd, &nl, &report)?;
        }
        Action::Hazard(path) => {
            let nl = load(path)?;
            let report = analyze(&nl, &cmd.config()).map_err(|e| e.to_string())?;
            let _ = writeln!(
                out,
                "{}: {} multi-cycle pairs by the MC condition",
                nl.name(),
                report.stats.multi_total()
            );
            for check in [HazardCheck::Sensitization, HazardCheck::CoSensitization] {
                let hz = check_hazards(&nl, &report, check);
                let _ = writeln!(
                    out,
                    "{check:?}: {} robust, {} potentially hazardous",
                    hz.robust.len(),
                    hz.demoted.len()
                );
                if !cmd.quiet {
                    for &(i, j) in &hz.demoted {
                        let _ = writeln!(out, "  demoted {}", pair_name(&nl, i, j));
                    }
                }
            }
        }
        Action::Sweep(path) => {
            let nl = load(path)?;
            let (swept, stats) = mcp_netlist::sweep(&nl);
            eprintln!(
                "# sweep: {} -> {} gates ({} const-folded, {} wires elided, \
                 {} duplicates merged, {} dead dropped)",
                stats.gates_before,
                stats.gates_after,
                stats.folded_constant,
                stats.elided_wire,
                stats.merged_duplicate,
                stats.dropped_dead
            );
            out.push_str(&bench::to_bench(&swept));
        }
        Action::Dot(path) => {
            let nl = load(path)?;
            out.push_str(&mcp_netlist::dot::to_dot(
                &nl,
                &mcp_netlist::dot::DotOptions::default(),
            ));
        }
        Action::Lint(path) => {
            // Parse permissively: the whole point of `lint` is to report
            // on netlists the strict loader would reject.
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            let nl = bench::parse_unchecked(path, &text).map_err(|e| e.to_string())?;
            let registry = mcp_lint::Registry::with_default_rules();
            // `--deny`/`--allow` must name real rules — a typo silently
            // doing nothing would defeat the point of a CI gate.
            for rule in cmd.deny.iter().chain(&cmd.allow) {
                if !registry.rules().any(|r| r.id() == rule) {
                    return Err(format!("unknown lint rule `{rule}`"));
                }
            }
            let mut lint_cfg = mcp_lint::LintConfig::default();
            for rule in &cmd.deny {
                lint_cfg = lint_cfg.deny(rule);
            }
            for rule in &cmd.allow {
                lint_cfg = lint_cfg.disable(rule);
            }
            let mut report = registry.run(&nl, &lint_cfg);
            // Error-level findings fail the command (exit code 1), judged
            // on the *full* report: a cap on the rendered list must not
            // let errors beyond it slip through the gate.
            let gate_failed = report.has_errors();
            let total = report.len();
            if let Some(cap) = cmd.max_diags {
                report.diagnostics.truncate(cap);
            }
            let rendered = match cmd.format {
                OutputFormat::Text => {
                    let mut text = report.render_text(nl.name());
                    if report.len() < total {
                        let _ = writeln!(
                            text,
                            "(showing {} of {total} findings; raise --max-diags for the rest)",
                            report.len()
                        );
                    }
                    text
                }
                OutputFormat::Json => report.render_json(),
                OutputFormat::Chrome => {
                    return Err("`lint` supports --format text|json only".into());
                }
            };
            if gate_failed {
                return Err(rendered);
            }
            out.push_str(&rendered);
        }
        Action::Glitch {
            path,
            src,
            dst,
            out: vcd_path,
        } => {
            let nl = load(path)?;
            let find_ff = |name: &str| -> Result<usize, String> {
                nl.find_node(name)
                    .and_then(|id| nl.ff_index(id))
                    .ok_or_else(|| format!("`{name}` is not a flip-flop of the circuit"))
            };
            let (i, j) = (find_ff(src)?, find_ff(dst)?);
            match hunt_glitch(&nl, i, j) {
                None => {
                    let _ = writeln!(
                        out,
                        "no dynamic glitch found at {dst}'s D input in {} sampled \
                         edges where {src} toggles",
                        GLITCH_TRIALS
                    );
                }
                Some((initial, events, transitions)) => {
                    let mut file = std::fs::File::create(vcd_path)
                        .map_err(|e| format!("create `{vcd_path}`: {e}"))?;
                    mcp_sim::vcd::write_vcd(&nl, &initial, &events, &mut file)
                        .map_err(|e| format!("write `{vcd_path}`: {e}"))?;
                    let _ = writeln!(
                        out,
                        "glitch found: {dst}'s D input transitioned {transitions} times; \
                         waveform written to {vcd_path}"
                    );
                }
            }
        }
        Action::Sdc { path, robust } => {
            let nl = load(path)?;
            let report = analyze(&nl, &cmd.config()).map_err(|e| e.to_string())?;
            let robust_only = robust.map(|check| check_hazards(&nl, &report, check));
            let text = to_sdc(
                &nl,
                &report,
                &SdcOptions {
                    robust_only,
                    cycles: cmd.cycles,
                },
            );
            // Round-trip the emitted constraints through the validator
            // before handing them to the user: every `-from`/`-to` must
            // name a real FF, lie on a combinational path, and appear in
            // the verified pair list. A failure here is an internal
            // emitter/report mismatch, never user error.
            let check = mcp_lint::validate_sdc(&nl, &report.multi_cycle_pairs(), &text);
            if check.has_errors() {
                return Err(format!(
                    "emitted SDC failed self-validation (internal error):\n{}",
                    check.render_text(path)
                ));
            }
            out.push_str(&text);
        }
        Action::Deps(path) => {
            let nl = load(path)?;
            let report = analyze(&nl, &cmd.config()).map_err(|e| e.to_string())?;
            let deps = sensitization_dependencies(&nl, &report);
            if let Some(p) = &cmd.json {
                let text =
                    serde_json::to_string_pretty(&deps).map_err(|e| format!("serialize: {e}"))?;
                std::fs::write(p, text).map_err(|e| format!("write `{p}`: {e}"))?;
            }
            let conditional = deps.deps.iter().filter(|(_, d)| !d.is_empty()).count();
            let _ = writeln!(
                out,
                "{}: {} sensitization-robust pairs, {} with cross-pair dependencies",
                nl.name(),
                deps.deps.len(),
                conditional
            );
            if !cmd.quiet {
                for ((i, j), d) in &deps.deps {
                    if d.is_empty() {
                        continue;
                    }
                    let list: Vec<String> = d.iter().map(|&(k, l)| pair_name(&nl, k, l)).collect();
                    let _ = writeln!(
                        out,
                        "  {} depends on {}",
                        pair_name(&nl, *i, *j),
                        list.join(", ")
                    );
                }
            }
        }
        Action::Kcycle(path, max_k) => {
            let nl = load(path)?;
            if *max_k < 2 {
                return Err("--max-k must be at least 2".into());
            }
            // Classic 2-cycle analysis selects the multi-cycle pairs; the
            // budget computation then brackets each pair's maximum.
            let report = analyze(&nl, &cmd.config()).map_err(|e| e.to_string())?;
            let _ = writeln!(
                out,
                "{}: cycle budgets of the {} multi-cycle pairs (limit {max_k}):",
                nl.name(),
                report.stats.multi_total()
            );
            // One shared expansion, pair sweeps distributed over
            // `--threads` workers; results come back sorted by pair.
            let budgets =
                max_cycle_budgets(&nl, &report.multi_cycle_pairs(), *max_k, &cmd.config())
                    .map_err(|e| e.to_string())?;
            for ((i, j), budget) in budgets {
                let desc = match budget {
                    CycleBudget::SingleCycle => "single-cycle (!)".to_owned(),
                    CycleBudget::Exact { verified } => format!("exactly {verified} cycles"),
                    CycleBudget::AtLeast { at_least } => format!("{at_least}+ cycles"),
                    CycleBudget::Unknown => "unknown (search aborted)".to_owned(),
                };
                let _ = writeln!(out, "  {:<24} {desc}", pair_name(&nl, i, j));
            }
        }
    }
    Ok(out)
}

/// Appends the standard `analyze`-style report output: the optional
/// `--json` dump, the summary lines, the per-pair listing (unless
/// `--quiet`), and the `--metrics` tables. Shared by `analyze`, `shard`
/// and `merge`, whose reports must render identically.
fn append_report(
    out: &mut String,
    cmd: &Command,
    nl: &Netlist,
    report: &McReport,
) -> Result<(), String> {
    if let Some(p) = &cmd.json {
        let text = if cmd.canonical {
            serde_json::to_string_pretty(&report.canonical())
        } else {
            serde_json::to_string_pretty(report)
        }
        .map_err(|e| format!("serialize: {e}"))?;
        std::fs::write(p, text).map_err(|e| format!("write `{p}`: {e}"))?;
    }
    let _ = writeln!(
        out,
        "{}: {} candidate pairs; {} multi-cycle, {} single-cycle, {} unknown",
        nl.name(),
        report.stats.candidates,
        report.stats.multi_total(),
        report.stats.single_total(),
        report.stats.unknown
    );
    let _ = writeln!(
        out,
        "steps: static resolved {} | sim dropped {} ({} words) | implication proved {} | search: {} single / {} multi",
        report.stats.multi_by_static,
        report.stats.single_by_sim,
        report.stats.sim_words,
        report.stats.multi_by_implication,
        report.stats.single_by_atpg,
        report.stats.multi_by_atpg
    );
    if !cmd.quiet {
        for p in &report.pairs {
            let verdict = match p.class {
                PairClass::MultiCycle { .. } => "multi-cycle ",
                PairClass::SingleCycle { .. } => "single-cycle",
                PairClass::Unknown => "UNKNOWN     ",
            };
            let step = match p.class {
                PairClass::MultiCycle { by } | PairClass::SingleCycle { by } => match by {
                    Step::RandomSim => "sim",
                    Step::Implication => "implication",
                    Step::Atpg => "search",
                    Step::Structural => "structural",
                },
                PairClass::Unknown => "aborted",
            };
            let _ = writeln!(
                out,
                "  {verdict} {:<24} [{step}]",
                pair_name(nl, p.src, p.dst)
            );
        }
    }
    if cmd.metrics {
        out.push('\n');
        out.push_str(&render_step_table(&report.stats));
        out.push('\n');
        out.push_str(&render_snapshot(&report.metrics));
    }
    Ok(())
}

/// `analyze --shards N`: fork one `mcpath shard` child process per
/// partition slice, wait for all of them, and merge their ledgers
/// in-process. The merged report is byte-identical (canonically) to a
/// single-process run; the shard ledgers live in a scratch directory
/// that is removed on success and kept on failure for post-mortems.
fn run_sharded(
    cmd: &Command,
    path: &str,
    nl: &Netlist,
    count: u64,
    out: &mut String,
) -> Result<McReport, String> {
    let exe =
        std::env::current_exe().map_err(|e| format!("cannot locate the mcpath binary: {e}"))?;
    let dir = std::env::temp_dir().join(format!("mcpath-shards-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("create `{}`: {e}", dir.display()))?;
    let flags = cmd.child_flags();

    let mut children = Vec::with_capacity(count as usize);
    let mut ledger_paths = Vec::with_capacity(count as usize);
    for index in 0..count {
        let ledger = dir.join(format!("shard-{index}.ndjson"));
        let child = std::process::Command::new(&exe)
            .arg("shard")
            .arg(path)
            .arg("--shard")
            .arg(format!("{index}/{count}"))
            .arg("--trace-out")
            .arg(&ledger)
            .args(&flags)
            .stdout(std::process::Stdio::null())
            .spawn()
            .map_err(|e| format!("spawn shard {index}/{count}: {e}"))?;
        children.push((index, child));
        ledger_paths.push(ledger);
    }
    for (index, mut child) in children {
        let status = child
            .wait()
            .map_err(|e| format!("wait for shard {index}/{count}: {e}"))?;
        if !status.success() {
            return Err(format!(
                "shard {index}/{count} failed with {status} (its ledger is under \
                 `{}`; fix the cause, resume it with `mcpath shard --resume`, then \
                 `mcpath merge`)",
                dir.display()
            ));
        }
    }

    let mut ledgers = Vec::with_capacity(ledger_paths.len());
    for p in &ledger_paths {
        ledgers.push(
            read_ledger_resilient_file(p)
                .map_err(|e| format!("cannot read ledger `{}`: {e}", p.display()))?,
        );
    }
    let obs = cmd.obs()?;
    let report = merge_shards_with(nl, &cmd.config(), &obs, &ledgers).map_err(|e| e.to_string())?;
    let _ = writeln!(
        out,
        "sharded: {count} processes, {} verdicts merged",
        obs.snapshot().counters.resume_pairs_loaded
    );
    let _ = std::fs::remove_dir_all(&dir);
    Ok(report)
}

/// Formats a duration compactly for table cells.
fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{}us", d.as_micros())
    }
}

/// Renders [`StepStats`] as the paper's Table-2 layout: pairs resolved
/// and wall-clock per step. The pair-loop time covers implication and
/// search together (they interleave per pair), so it sits on the
/// `search` row.
fn render_step_table(s: &StepStats) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "per-step resolution ({} candidate pairs):",
        s.candidates
    );
    let _ = writeln!(
        out,
        "  {:<12} {:>7} {:>7} {:>8} {:>10} {:>12}",
        "step", "multi", "single", "unknown", "time", "throughput"
    );
    let _ = writeln!(
        out,
        "  {:<12} {:>7} {:>7} {:>8} {:>10} {:>12}",
        "structural",
        s.multi_by_static,
        0,
        0,
        fmt_dur(s.time_static),
        "-"
    );
    let _ = writeln!(
        out,
        "  {:<12} {:>7} {:>7} {:>8} {:>10} {:>12}",
        "random_sim",
        0,
        s.single_by_sim,
        0,
        fmt_dur(s.time_sim),
        fmt_words_per_sec(s.sim_words, s.time_sim)
    );
    let _ = writeln!(
        out,
        "  {:<12} {:>7} {:>7} {:>8} {:>10} {:>12}",
        "implication", s.multi_by_implication, s.single_by_implication, 0, "-", "-"
    );
    let _ = writeln!(
        out,
        "  {:<12} {:>7} {:>7} {:>8} {:>10} {:>12}",
        "search",
        s.multi_by_atpg,
        s.single_by_atpg,
        s.unknown,
        fmt_dur(s.time_pairs),
        "-"
    );
    let _ = writeln!(
        out,
        "  {:<12} {:>7} {:>7} {:>8} {:>10} {:>12}",
        "prepare",
        "",
        "",
        "",
        fmt_dur(s.time_prepare),
        "-"
    );
    let _ = writeln!(
        out,
        "  {:<12} {:>7} {:>7} {:>8} {:>10} {:>12}",
        "total",
        s.multi_total(),
        s.single_total(),
        s.unknown,
        fmt_dur(s.time_total),
        "-"
    );
    out
}

/// `words` 64-pattern simulation words over `t` as a human unit
/// (`"1.2Mw/s"`), or `"-"` when either side is zero.
fn fmt_words_per_sec(words: u64, t: Duration) -> String {
    let secs = t.as_secs_f64();
    if words == 0 || secs <= 0.0 {
        return "-".to_string();
    }
    let wps = words as f64 / secs;
    if wps >= 1e6 {
        format!("{:.1}Mw/s", wps / 1e6)
    } else if wps >= 1e3 {
        format!("{:.1}kw/s", wps / 1e3)
    } else {
        format!("{wps:.0}w/s")
    }
}

/// Renders a [`MetricsSnapshot`]: the non-zero engine counters followed
/// by accumulated span timings.
fn render_snapshot(m: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let c = &m.counters;
    let rows: [(&str, u64); 31] = [
        ("implications", c.implications),
        ("contradictions", c.contradictions),
        ("learned_implications", c.learned_implications),
        ("atpg_decisions", c.atpg_decisions),
        ("atpg_backtracks", c.atpg_backtracks),
        ("atpg_aborts", c.atpg_aborts),
        ("sat_decisions", c.sat_decisions),
        ("sat_propagations", c.sat_propagations),
        ("sat_conflicts", c.sat_conflicts),
        ("sat_learned", c.sat_learned),
        ("sat_restarts", c.sat_restarts),
        ("bdd_peak_nodes", c.bdd_peak_nodes),
        ("bdd_cache_lookups", c.bdd_cache_lookups),
        ("bdd_cache_hits", c.bdd_cache_hits),
        ("slice_builds", c.slice_builds),
        ("slice_cache_hits", c.slice_cache_hits),
        ("slice_nodes", c.slice_nodes),
        ("slice_vars", c.slice_vars),
        ("slice_nodes_peak", c.slice_nodes_peak),
        ("sim_words", c.sim_words),
        ("sim_pairs_dropped", c.sim_pairs_dropped),
        ("sim_passes", c.sim_passes),
        ("sim_tape_ops", c.sim_tape_ops),
        ("lint_rules_run", c.lint_rules_run),
        ("lint_violations", c.lint_violations),
        ("lint_nodes_visited", c.lint_nodes_visited),
        ("dataflow_consts", c.dataflow_consts),
        ("dataflow_iters", c.dataflow_iters),
        ("static_resolved", c.static_resolved),
        ("shard_pairs_owned", c.shard_pairs_owned),
        ("shard_pairs_skipped", c.shard_pairs_skipped),
    ];
    let _ = writeln!(out, "engine counters:");
    for (name, v) in rows {
        if v != 0 {
            let _ = writeln!(out, "  {name:<24} {v}");
        }
    }
    if c.bdd_cache_lookups != 0 {
        let _ = writeln!(
            out,
            "  {:<24} {:.1}%",
            "bdd_cache_hit_rate",
            c.bdd_cache_hit_rate() * 100.0
        );
    }
    if c.slice_builds != 0 {
        let _ = writeln!(
            out,
            "  {:<24} {:.1}",
            "slice_nodes_mean",
            c.slice_nodes_mean()
        );
    }
    let wps = m.sim_words_per_sec();
    if wps > 0.0 {
        let _ = writeln!(out, "  {:<24} {wps:.0}", "sim_words_per_sec");
    }
    if !m.spans.is_empty() {
        let _ = writeln!(out, "spans:");
        // The BTreeMap's lexicographic order visits parents before their
        // children, so the `/`-separated paths render as an indented
        // tree: each entry prints its final segment at a depth matching
        // its ancestry, with bare `name/` lines for ancestors that have
        // no timer entry of their own.
        let mut prev: Vec<&str> = Vec::new();
        for (path, st) in &m.spans {
            let segs: Vec<&str> = path.split('/').collect();
            let shared = prev.iter().zip(&segs).take_while(|(a, b)| a == b).count();
            let ancestors = segs.iter().enumerate().take(segs.len() - 1).skip(shared);
            for (depth, seg) in ancestors {
                let _ = writeln!(out, "  {:pad$}{seg}/", "", pad = depth * 2);
            }
            let depth = segs.len() - 1;
            let mean = if st.count > 1 {
                format!("  mean {}", fmt_dur(st.mean()))
            } else {
                String::new()
            };
            let label = format!("{:pad$}{}", "", segs[depth], pad = depth * 2);
            let _ = writeln!(
                out,
                "  {label:<24} {:>10}  x{}{mean}",
                fmt_dur(st.total),
                st.count
            );
            prev = segs;
        }
    }
    out
}

/// Aggregates an NDJSON trace journal into a Table-2-style per-step
/// table plus an assignment-outcome histogram.
fn render_journal(events: &[PairEvent]) -> String {
    use std::collections::BTreeMap;
    #[derive(Default, Clone, Copy)]
    struct Row {
        multi: u64,
        single: u64,
        unknown: u64,
        micros: u64,
        /// Summed `slice_nodes` over the events that carried one.
        slice_nodes: u64,
        sliced_events: u64,
    }
    impl Row {
        /// Mean slice size over the sliced events, rendered `-` when the
        /// step never ran on a slice.
        fn slice_mean(&self) -> String {
            if self.sliced_events == 0 {
                "-".to_owned()
            } else {
                format!("{:.0}", self.slice_nodes as f64 / self.sliced_events as f64)
            }
        }
    }
    let mut steps: BTreeMap<&str, Row> = BTreeMap::new();
    let mut outcomes: BTreeMap<&str, u64> = BTreeMap::new();
    for e in events {
        let entry = steps.entry(e.step.as_str()).or_default();
        match e.class.as_str() {
            "multi" => entry.multi += 1,
            "single" => entry.single += 1,
            _ => entry.unknown += 1,
        }
        entry.micros += e.micros;
        if let Some(n) = e.slice_nodes {
            entry.slice_nodes += n;
            entry.sliced_events += 1;
        }
        for a in &e.assignments {
            *outcomes.entry(a.outcome.as_str()).or_default() += 1;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "trace journal: {} pair events", events.len());
    let _ = writeln!(
        out,
        "  {:<12} {:>7} {:>7} {:>8} {:>10} {:>9}",
        "step", "multi", "single", "unknown", "time", "slice"
    );
    // Pipeline order first, then anything unexpected.
    let known = ["structural", "random_sim", "implication", "atpg"];
    let ordered = known
        .iter()
        .filter_map(|&k| steps.get_key_value(k))
        .chain(steps.iter().filter(|(k, _)| !known.contains(k)));
    let mut total = Row::default();
    for (step, &r) in ordered {
        total.multi += r.multi;
        total.single += r.single;
        total.unknown += r.unknown;
        total.micros += r.micros;
        total.slice_nodes += r.slice_nodes;
        total.sliced_events += r.sliced_events;
        let _ = writeln!(
            out,
            "  {:<12} {:>7} {:>7} {:>8} {:>10} {:>9}",
            step,
            r.multi,
            r.single,
            r.unknown,
            fmt_dur(Duration::from_micros(r.micros)),
            r.slice_mean()
        );
    }
    let _ = writeln!(
        out,
        "  {:<12} {:>7} {:>7} {:>8} {:>10} {:>9}",
        "total",
        total.multi,
        total.single,
        total.unknown,
        fmt_dur(Duration::from_micros(total.micros)),
        total.slice_mean()
    );
    if !outcomes.is_empty() {
        let list: Vec<String> = outcomes.iter().map(|(k, v)| format!("{k}={v}")).collect();
        let _ = writeln!(out, "assignment outcomes: {}", list.join(" "));
    }
    out
}

/// Pretty-prints a saved JSON artifact: either a full [`McReport`] (as
/// written by `--json`) or a bare [`MetricsSnapshot`].
fn render_saved_report(path: &str, text: &str) -> Result<String, String> {
    if let Ok(report) = serde_json::from_str::<McReport>(text) {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: saved report with {} pairs",
            report.circuit,
            report.pairs.len()
        );
        out.push_str(&render_step_table(&report.stats));
        out.push('\n');
        out.push_str(&render_snapshot(&report.metrics));
        Ok(out)
    } else if let Ok(snap) = serde_json::from_str::<MetricsSnapshot>(text) {
        Ok(render_snapshot(&snap))
    } else {
        Err(format!(
            "`{path}` is neither a saved analyze report nor a metrics snapshot"
        ))
    }
}

const GLITCH_TRIALS: usize = 512;

/// Samples random pre/post-edge value pairs where FF `i` toggles, under
/// random transport delays, until FF `j`'s D input glitches; returns the
/// initial values, the event trace and the transition count.
#[allow(clippy::type_complexity)]
fn hunt_glitch(
    nl: &Netlist,
    i: usize,
    j: usize,
) -> Option<(Vec<bool>, Vec<(u64, mcp_netlist::NodeId, bool)>, u32)> {
    use mcp_sim::{DelaySim, ParallelSim};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(0x1905_0607);
    let mut psim = ParallelSim::new(nl);
    let dst = nl.ff_d_input(j);
    let mut trials = 0usize;
    while trials < GLITCH_TRIALS {
        psim.randomize_state(&mut rng);
        psim.randomize_inputs(&mut rng);
        let s0: Vec<u64> = (0..nl.num_ffs()).map(|k| psim.state(k)).collect();
        psim.eval();
        let in0: Vec<u64> = nl.inputs().iter().map(|&pi| psim.value(pi)).collect();
        let s1: Vec<u64> = (0..nl.num_ffs()).map(|k| psim.next_state(k)).collect();
        let toggles = s0[i] ^ s1[i];
        for lane in 0..64 {
            if toggles >> lane & 1 == 0 || trials >= GLITCH_TRIALS {
                continue;
            }
            trials += 1;
            let bit = |w: u64| w >> lane & 1 == 1;
            let pis0: Vec<bool> = in0.iter().map(|&w| bit(w)).collect();
            let ffs0: Vec<bool> = s0.iter().map(|&w| bit(w)).collect();
            let ffs1: Vec<bool> = s1.iter().map(|&w| bit(w)).collect();
            let pis1: Vec<bool> = (0..nl.num_inputs()).map(|_| rng.random()).collect();
            let mut dsim = DelaySim::new(nl);
            for &g in nl.topo_gates() {
                dsim.set_delay(g, rng.random_range(1..16));
            }
            dsim.record_waveforms(true);
            dsim.init(&pis0, &ffs0);
            let initial: Vec<bool> = nl.nodes().map(|(id, _)| dsim.value(id)).collect();
            let report = dsim.edge(&pis1, &ffs1);
            if report.glitched(dst) {
                return Some((initial, report.events().to_vec(), report.transitions(dst)));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_analyze_with_options() {
        let cmd = parse_args(argv(
            "analyze foo.bench --engine sat --cycles 3 --backtracks 99 --threads 4 --quiet",
        ))
        .expect("parse");
        assert_eq!(cmd.action, Action::Analyze("foo.bench".into()));
        assert_eq!(cmd.engine, Engine::Sat);
        assert_eq!(cmd.cycles, 3);
        assert_eq!(cmd.backtracks, 99);
        assert_eq!(cmd.threads, 4);
        assert!(cmd.quiet);
    }

    #[test]
    fn parses_scheduler_policy() {
        let cmd = parse_args(argv("analyze f.bench")).expect("parse");
        assert_eq!(cmd.scheduler, Scheduler::WorkSteal, "stealing is default");
        assert_eq!(cmd.config().scheduler, Scheduler::WorkSteal);
        let cmd = parse_args(argv("analyze f.bench --scheduler static")).expect("parse");
        assert_eq!(cmd.scheduler, Scheduler::Static);
        assert_eq!(cmd.config().scheduler, Scheduler::Static);
        let cmd = parse_args(argv("analyze f.bench --scheduler steal")).expect("parse");
        assert_eq!(cmd.scheduler, Scheduler::WorkSteal);
        assert!(parse_args(argv("analyze f.bench --scheduler fifo")).is_err());
        assert!(parse_args(argv("analyze f.bench --scheduler")).is_err());
    }

    #[test]
    fn rejects_unknown_flags_and_engines() {
        assert!(parse_args(argv("analyze f.bench --frobnicate")).is_err());
        assert!(parse_args(argv("analyze f.bench --engine quantum")).is_err());
        assert!(parse_args(argv("kcycle f.bench")).is_err(), "needs --max-k");
        assert!(parse_args(argv("teleport f.bench")).is_err());
        assert!(parse_args(Vec::<String>::new()).is_err());
    }

    #[test]
    fn gen_emits_parseable_bench() {
        let cmd = parse_args(argv("gen m27")).expect("parse");
        let text = run(&cmd).expect("run");
        let nl = bench::parse("m27", &text).expect("generated bench parses");
        assert!(nl.num_ffs() >= 3);
    }

    #[test]
    fn gen_rejects_unknown_circuit() {
        let cmd = parse_args(argv("gen s99999")).expect("parse");
        assert!(run(&cmd).is_err());
    }

    #[test]
    fn analyze_runs_on_a_generated_file() {
        let dir = std::env::temp_dir().join("mcpath-cli-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("m27.bench");
        let text = run(&parse_args(argv("gen m27")).expect("parse")).expect("gen");
        std::fs::write(&path, text).expect("write");

        let cmd = parse_args(argv(&format!("analyze {}", path.display()))).expect("parse");
        let out = run(&cmd).expect("analyze");
        assert!(out.contains("multi-cycle"), "{out}");

        let cmd = parse_args(argv(&format!("hazard {} --quiet", path.display()))).expect("parse");
        let out = run(&cmd).expect("hazard");
        assert!(out.contains("Sensitization"), "{out}");

        let cmd = parse_args(argv(&format!("kcycle {} --max-k 4", path.display()))).expect("parse");
        let out = run(&cmd).expect("kcycle");
        assert!(out.contains("cycles"), "{out}");
        // The budget sweep is deterministic under parallel scheduling.
        for extra in ["--threads 8", "--threads 8 --scheduler static"] {
            let cmd = parse_args(argv(&format!(
                "kcycle {} --max-k 4 {extra}",
                path.display()
            )))
            .expect("parse");
            assert_eq!(run(&cmd).expect("kcycle parallel"), out, "{extra}");
        }

        let cmd = parse_args(argv(&format!("sdc {}", path.display()))).expect("parse");
        let out = run(&cmd).expect("sdc");
        assert!(out.contains("set_multicycle_path"), "{out}");
        let cmd =
            parse_args(argv(&format!("sdc {} --robust cosens", path.display()))).expect("parse");
        let out = run(&cmd).expect("sdc robust");
        assert!(out.contains("hazard-robust"), "{out}");

        let cmd = parse_args(argv(&format!("deps {}", path.display()))).expect("parse");
        let out = run(&cmd).expect("deps");
        assert!(out.contains("sensitization-robust"), "{out}");

        let cmd = parse_args(argv(&format!("stats {}", path.display()))).expect("parse");
        let out = run(&cmd).expect("stats");
        assert!(out.contains("ff_pairs"), "{out}");
    }

    #[test]
    fn dot_and_glitch_subcommands_work() {
        let dir = std::env::temp_dir().join("mcpath-cli-test2");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("fig3.bench");
        let nl = mcp_gen::circuits::fig3();
        std::fs::write(&path, bench::to_bench(&nl)).expect("write");

        let cmd = parse_args(argv(&format!("sweep {}", path.display()))).expect("parse");
        let out = run(&cmd).expect("sweep");
        let swept = bench::parse("swept", &out).expect("swept output parses");
        assert_eq!(swept.num_ffs(), nl.num_ffs());

        let cmd = parse_args(argv(&format!("dot {}", path.display()))).expect("parse");
        let out = run(&cmd).expect("dot");
        assert!(out.starts_with("digraph"), "{out}");

        let vcd = dir.join("glitch.vcd");
        let cmd = parse_args(argv(&format!(
            "glitch {} FF3 FF2 {}",
            path.display(),
            vcd.display()
        )))
        .expect("parse");
        let out = run(&cmd).expect("glitch");
        assert!(out.contains("glitch found"), "{out}");
        let text = std::fs::read_to_string(&vcd).expect("vcd written");
        assert!(text.contains("$enddefinitions"));

        // A non-FF name is a clean error.
        let cmd = parse_args(argv(&format!(
            "glitch {} EN2 FF2 {}",
            path.display(),
            vcd.display()
        )))
        .expect("parse");
        assert!(run(&cmd).is_err());
    }

    #[test]
    fn lint_subcommand_reports_and_gates() {
        let dir = std::env::temp_dir().join("mcpath-cli-lint");
        std::fs::create_dir_all(&dir).expect("tmp dir");

        // A clean generated circuit lints without findings.
        let clean = dir.join("m27.bench");
        let text = run(&parse_args(argv("gen m27")).expect("parse")).expect("gen");
        std::fs::write(&clean, text).expect("write");
        let out = run(&parse_args(argv(&format!("lint {}", clean.display()))).expect("parse"))
            .expect("lint clean");
        assert!(out.contains("0 error(s)"), "{out}");

        // JSON format is machine-parseable.
        let out = run(
            &parse_args(argv(&format!("lint {} --format json", clean.display()))).expect("parse"),
        )
        .expect("lint json");
        assert!(
            serde_json::from_str::<mcp_lint::Diagnostics>(&out).is_ok(),
            "{out}"
        );
        assert!(parse_args(argv("lint f.bench --format yaml")).is_err());

        // A combinational cycle lints (permissive parse) and fails the
        // command with an error-level diagnostic...
        let cyclic = dir.join("cyclic.bench");
        std::fs::write(&cyclic, "OUTPUT(a)\na = NOT(b)\nb = NOT(a)\n").expect("write");
        let err = run(&parse_args(argv(&format!("lint {}", cyclic.display()))).expect("parse"))
            .unwrap_err();
        assert!(err.contains("comb-cycle"), "{err}");

        // ...while `analyze` refuses the same file already at load time.
        let err = run(&parse_args(argv(&format!("analyze {}", cyclic.display()))).expect("parse"))
            .unwrap_err();
        assert!(err.contains("cyclic"), "{err}");
    }

    #[test]
    fn no_lint_flag_reaches_the_config() {
        let cmd = parse_args(argv("analyze f.bench --no-lint")).expect("parse");
        assert!(cmd.no_lint);
        assert!(!cmd.config().lint);
        let cmd = parse_args(argv("analyze f.bench")).expect("parse");
        assert!(cmd.config().lint);
    }

    #[test]
    fn no_static_classify_flag_reaches_the_config() {
        let cmd = parse_args(argv("analyze f.bench --no-static-classify")).expect("parse");
        assert!(cmd.no_static_classify);
        assert!(!cmd.config().static_classify);
        // Without the flag the default applies (on, unless the
        // MCPATH_NO_STATIC_CLASSIFY env var is set in this test
        // environment).
        let cmd = parse_args(argv("analyze f.bench")).expect("parse");
        assert_eq!(
            cmd.config().static_classify,
            McConfig::default().static_classify
        );
    }

    #[test]
    fn lint_deny_allow_and_max_diags() {
        let dir = std::env::temp_dir().join("mcpath-cli-lint-flags");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        // A dangling FF (never marked as an output) is a Warn-level
        // finding by default.
        let dangling = dir.join("dangling.bench");
        std::fs::write(
            &dangling,
            "INPUT(a)\nINPUT(b)\nOUTPUT(o)\nq = DFF(g)\ng = NOT(a)\no = AND(a, b)\n",
        )
        .expect("write");

        // Warnings pass by default...
        let out = run(&parse_args(argv(&format!("lint {}", dangling.display()))).expect("parse"))
            .expect("lint warns only");
        assert!(out.contains("dangling-ff"), "{out}");
        assert!(out.contains("0 error(s)"), "{out}");

        // ...but `--deny` escalates the rule to a gating error...
        let err = run(&parse_args(argv(&format!(
            "lint {} --deny dangling-ff",
            dangling.display()
        )))
        .expect("parse"))
        .unwrap_err();
        assert!(err.contains("error[dangling-ff]"), "{err}");

        // ...and `--allow` suppresses it entirely.
        let out = run(&parse_args(argv(&format!(
            "lint {} --allow dangling-ff",
            dangling.display()
        )))
        .expect("parse"))
        .expect("lint allowed");
        assert!(!out.contains("dangling-ff"), "{out}");

        // `--max-diags 0` truncates the listing but keeps the total note.
        let out = run(
            &parse_args(argv(&format!("lint {} --max-diags 0", dangling.display())))
                .expect("parse"),
        )
        .expect("lint capped");
        assert!(!out.contains("dangling-ff"), "{out}");
        assert!(out.contains("showing 0 of"), "{out}");

        // The cap must not mask the error gate: a comb cycle still fails
        // even when its finding is cut from the listing.
        let cyclic = dir.join("cyclic.bench");
        std::fs::write(&cyclic, "OUTPUT(a)\na = NOT(b)\nb = NOT(a)\n").expect("write");
        let err = run(
            &parse_args(argv(&format!("lint {} --max-diags 0", cyclic.display()))).expect("parse"),
        )
        .unwrap_err();
        assert!(err.contains("showing 0 of"), "{err}");

        // Typos in rule names are clean errors, not silent no-ops.
        for flag in ["--deny", "--allow"] {
            let err = run(&parse_args(argv(&format!(
                "lint {} {flag} no-such-rule",
                dangling.display()
            )))
            .expect("parse"))
            .unwrap_err();
            assert!(err.contains("unknown lint rule"), "{err}");
        }
        assert!(parse_args(argv("lint f.bench --max-diags abc")).is_err());
        assert!(parse_args(argv("lint f.bench --deny")).is_err());
    }

    #[test]
    fn no_slice_flag_reaches_the_config() {
        let cmd = parse_args(argv("analyze f.bench --no-slice")).expect("parse");
        assert!(cmd.no_slice);
        assert!(!cmd.config().slice);
        // Without the flag the default applies (on, unless the
        // MCPATH_NO_SLICE env var is set in this test environment).
        let cmd = parse_args(argv("analyze f.bench")).expect("parse");
        assert_eq!(cmd.config().slice, McConfig::default().slice);
    }

    #[test]
    fn sim_lanes_and_no_tape_flags_reach_the_config() {
        let cmd = parse_args(argv("analyze f.bench --sim-lanes 128 --no-tape")).expect("parse");
        assert_eq!(cmd.sim_lanes, Some(128));
        assert!(cmd.no_tape);
        let cfg = cmd.config();
        assert_eq!(cfg.sim_lanes(), 128);
        assert!(!cfg.sim.tape);
        // Without the flags the defaults apply (256 lanes / tape on,
        // unless MCPATH_SIM_LANES / MCPATH_NO_TAPE are set in this test
        // environment).
        let cmd = parse_args(argv("analyze f.bench")).expect("parse");
        assert_eq!(cmd.config().sim, McConfig::default().sim);
        // Non-numeric widths are parse errors; missing values too.
        assert!(parse_args(argv("analyze f.bench --sim-lanes abc")).is_err());
        assert!(parse_args(argv("analyze f.bench --sim-lanes")).is_err());
    }

    #[test]
    fn unsupported_lane_width_is_a_clean_analyze_error() {
        // 96 parses as a number; `analyze` rejects it (the same check
        // covers MCPATH_SIM_LANES, so the CLI does not pre-validate).
        let dir = std::env::temp_dir().join("mcpath-cli-test-lanes");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let bench_path = dir.join("m27.bench");
        let text = run(&parse_args(argv("gen m27")).expect("parse")).expect("gen");
        std::fs::write(&bench_path, text).expect("write");
        let cmd = parse_args(argv(&format!(
            "analyze {} --sim-lanes 96 --quiet",
            bench_path.display()
        )))
        .expect("parse");
        let err = run(&cmd).unwrap_err();
        assert!(err.contains("sim lanes"), "{err}");
        assert!(err.contains("96"), "{err}");
    }

    #[test]
    fn parses_observability_flags() {
        let cmd = parse_args(argv(
            "analyze foo.bench --metrics --trace-out t.ndjson --progress",
        ))
        .expect("parse");
        assert!(cmd.metrics);
        assert_eq!(cmd.trace_out.as_deref(), Some("t.ndjson"));
        assert!(cmd.progress);
        assert!(parse_args(argv("analyze f.bench --trace-out")).is_err());
    }

    #[test]
    fn metrics_trace_and_stats_round_trip() {
        let dir = std::env::temp_dir().join("mcpath-cli-test3");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let bench_path = dir.join("m27.bench");
        let text = run(&parse_args(argv("gen m27")).expect("parse")).expect("gen");
        std::fs::write(&bench_path, text).expect("write");
        let json = dir.join("report.json");
        let trace = dir.join("trace.ndjson");

        let cmd = parse_args(argv(&format!(
            "analyze {} --metrics --json {} --trace-out {} --quiet",
            bench_path.display(),
            json.display(),
            trace.display()
        )))
        .expect("parse");
        let out = run(&cmd).expect("analyze");
        assert!(out.contains("engine counters:"), "{out}");
        assert!(out.contains("implications"), "{out}");
        assert!(out.contains("per-step resolution"), "{out}");
        assert!(out.contains("throughput"), "{out}");
        assert!(out.contains("sim_words_per_sec"), "{out}");

        // `stats` on the NDJSON journal aggregates the per-pair events.
        let cmd = parse_args(argv(&format!("stats {}", trace.display()))).expect("parse");
        let out = run(&cmd).expect("stats journal");
        assert!(out.contains("trace journal:"), "{out}");
        assert!(out.contains("total"), "{out}");

        // `stats` on the saved JSON report prints the same tables.
        let cmd = parse_args(argv(&format!("stats {}", json.display()))).expect("parse");
        let out = run(&cmd).expect("stats report");
        assert!(out.contains("saved report"), "{out}");
        assert!(out.contains("engine counters:"), "{out}");

        // A JSON file that is neither is a clean error.
        let bogus = dir.join("bogus.json");
        std::fs::write(&bogus, "[1, 2, 3]").expect("write");
        let cmd = parse_args(argv(&format!("stats {}", bogus.display()))).expect("parse");
        assert!(run(&cmd).is_err());
    }

    #[test]
    fn parses_resume_compare_and_canonical_flags() {
        let cmd = parse_args(argv(
            "analyze f.bench --resume old.ndjson --canonical --json r.json",
        ))
        .expect("parse");
        assert_eq!(cmd.resume.as_deref(), Some("old.ndjson"));
        assert!(cmd.canonical);

        let cmd = parse_args(argv("stats --compare a.json b.json --threshold 5")).expect("parse");
        assert_eq!(
            cmd.action,
            Action::Compare {
                old: "a.json".into(),
                new: "b.json".into()
            }
        );
        assert!((cmd.threshold - 5.0).abs() < 1e-9);
        assert!(parse_args(argv("stats --compare a.json")).is_err());
        assert!(parse_args(argv("stats x.bench --compare a.json b.json")).is_err());
        assert!(parse_args(argv("stats --compare a.json b.json --threshold abc")).is_err());

        let cmd = parse_args(argv("trace t.ndjson")).expect("parse");
        assert_eq!(cmd.action, Action::Trace("t.ndjson".into()));
        assert_eq!(cmd.format, OutputFormat::Chrome, "trace defaults to chrome");
        assert!(parse_args(argv("trace")).is_err());
        assert!(run(&parse_args(argv("lint f.bench --format chrome")).expect("parse")).is_err());
    }

    #[test]
    fn resume_trace_and_compare_round_trip() {
        let dir = std::env::temp_dir().join("mcpath-cli-ledger");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let bench_path = dir.join("m27.bench");
        let text = run(&parse_args(argv("gen m27")).expect("parse")).expect("gen");
        std::fs::write(&bench_path, text).expect("write");
        let full = dir.join("full.ndjson");
        let report = dir.join("report.json");
        let c1 = dir.join("c1.json");
        let c2 = dir.join("c2.json");

        // Uninterrupted run: full ledger + plain and canonical reports.
        let out = run(&parse_args(argv(&format!(
            "analyze {} --trace-out {} --json {} --quiet",
            bench_path.display(),
            full.display(),
            report.display()
        )))
        .expect("parse"))
        .expect("analyze");
        assert!(!out.contains("resumed:"), "{out}");
        run(&parse_args(argv(&format!(
            "analyze {} --json {} --canonical --quiet",
            bench_path.display(),
            c1.display()
        )))
        .expect("parse"))
        .expect("analyze canonical");

        // `trace` exports the ledger's span tree as Chrome trace JSON.
        let out = run(&parse_args(argv(&format!("trace {}", full.display()))).expect("parse"))
            .expect("trace ledger");
        let doc: mcp_obs::ChromeTrace = serde_json::from_str(&out).expect("chrome JSON");
        assert!(!doc.traceEvents.is_empty());
        assert!(doc
            .traceEvents
            .iter()
            .any(|e| e.name.starts_with("analyze")));
        // ...and a saved report degrades to span totals.
        let out = run(&parse_args(argv(&format!("trace {}", report.display()))).expect("parse"))
            .expect("trace report");
        let doc: mcp_obs::ChromeTrace = serde_json::from_str(&out).expect("chrome JSON");
        assert!(!doc.traceEvents.is_empty());

        // Simulate a mid-run kill: keep the header and half the events.
        let ledger_text = std::fs::read_to_string(&full).expect("read ledger");
        let lines: Vec<&str> = ledger_text.lines().collect();
        let keep = (lines.len() / 2).max(2);
        let truncated = dir.join("killed.ndjson");
        std::fs::write(&truncated, format!("{}\n", lines[..keep].join("\n"))).expect("write");

        // Resume completes the run; the canonical report is byte-identical.
        let out = run(&parse_args(argv(&format!(
            "analyze {} --resume {} --json {} --canonical --quiet",
            bench_path.display(),
            truncated.display(),
            c2.display()
        )))
        .expect("parse"))
        .expect("resume");
        assert!(out.contains("resumed:"), "{out}");
        assert_eq!(
            std::fs::read(&c1).expect("read c1"),
            std::fs::read(&c2).expect("read c2"),
            "resumed canonical report must be byte-identical"
        );

        // Identical artifacts compare clean; a ledger that gained events
        // relative to its baseline is a regression (exit code 1).
        let out = run(&parse_args(argv(&format!(
            "stats --compare {} {}",
            c1.display(),
            c2.display()
        )))
        .expect("parse"))
        .expect("compare identical");
        assert!(out.contains("no counter differences"), "{out}");
        let err = run(&parse_args(argv(&format!(
            "stats --compare {} {}",
            truncated.display(),
            full.display()
        )))
        .expect("parse"))
        .unwrap_err();
        assert!(err.contains("regression"), "{err}");

        // Resuming against a different circuit is a clean mismatch error
        // that names both digests.
        let fig3 = dir.join("fig3.bench");
        std::fs::write(&fig3, bench::to_bench(&mcp_gen::circuits::fig3())).expect("write");
        let err = run(&parse_args(argv(&format!(
            "analyze {} --resume {} --quiet",
            fig3.display(),
            full.display()
        )))
        .expect("parse"))
        .unwrap_err();
        assert!(err.contains("netlist mismatch"), "{err}");
        assert!(err.contains("ledger digest"), "{err}");
    }

    #[test]
    fn span_table_renders_as_an_indented_hierarchy() {
        let mut snap = MetricsSnapshot::default();
        snap.spans.insert(
            "analyze".to_owned(),
            mcp_obs::SpanStat {
                total: Duration::from_millis(10),
                count: 1,
            },
        );
        snap.spans.insert(
            "analyze/pairs".to_owned(),
            mcp_obs::SpanStat {
                total: Duration::from_millis(8),
                count: 4,
            },
        );
        snap.spans.insert(
            "orphan/child".to_owned(),
            mcp_obs::SpanStat {
                total: Duration::from_millis(1),
                count: 1,
            },
        );
        let out = render_snapshot(&snap);
        assert!(out.contains("\n  analyze "), "{out}");
        assert!(out.contains("\n    pairs"), "indented child:\n{out}");
        assert!(out.contains("mean 2.00ms"), "per-entry mean:\n{out}");
        assert!(out.contains("  orphan/\n"), "ancestor header:\n{out}");
        assert!(out.contains("\n    child"), "{out}");
    }

    #[test]
    fn parses_shard_and_merge_surfaces() {
        // `shard` needs --shard I/N and --trace-out.
        let cmd =
            parse_args(argv("shard f.bench --shard 2/4 --trace-out s2.ndjson")).expect("parse");
        assert_eq!(cmd.action, Action::Shard("f.bench".into()));
        assert_eq!(cmd.shard, Some((2, 4)));
        assert_eq!(cmd.config().shard, Some(ShardSpec { index: 2, count: 4 }));
        assert!(parse_args(argv("shard f.bench --trace-out s.ndjson")).is_err());
        assert!(parse_args(argv("shard f.bench --shard 0/4")).is_err());
        for bad in ["2", "2/", "/4", "a/b", "1/2/3"] {
            assert!(
                parse_args(argv(&format!(
                    "shard f.bench --shard {bad} --trace-out s.ndjson"
                )))
                .is_err(),
                "--shard {bad} must be rejected"
            );
        }

        // `merge` takes the bench plus at least one ledger.
        let cmd = parse_args(argv("merge f.bench a.ndjson b.ndjson")).expect("parse");
        assert_eq!(
            cmd.action,
            Action::Merge {
                path: "f.bench".into(),
                ledgers: vec!["a.ndjson".into(), "b.ndjson".into()],
            }
        );
        assert!(parse_args(argv("merge f.bench")).is_err());

        // `analyze --shards` is the driver; it refuses `--resume`.
        let cmd = parse_args(argv("analyze f.bench --shards 4")).expect("parse");
        assert_eq!(cmd.shards, Some(4));
        assert!(
            cmd.config().shard.is_none(),
            "the driver itself is unsharded"
        );
        assert!(parse_args(argv("analyze f.bench --shards 0")).is_err());
        assert!(parse_args(argv("analyze f.bench --shards abc")).is_err());
        let err = parse_args(argv("analyze f.bench --shards 2 --resume l.ndjson")).unwrap_err();
        assert!(err.to_string().contains("--resume"), "{err}");
    }

    #[test]
    fn shard_children_inherit_the_fingerprint_flags() {
        let cmd = parse_args(argv(
            "analyze f.bench --shards 2 --engine sat --cycles 3 --backtracks 99 --learn \
             --threads 4 --scheduler static --no-sim --sim-lanes 128 --no-tape \
             --no-self-pairs --no-lint --no-slice --no-static-classify",
        ))
        .expect("parse");
        let flags = cmd.child_flags();
        let rebuilt = parse_args(
            ["shard".into(), "f.bench".into()]
                .into_iter()
                .chain([
                    "--shard".to_owned(),
                    "0/2".to_owned(),
                    "--trace-out".to_owned(),
                    "s.ndjson".to_owned(),
                ])
                .chain(flags),
        )
        .expect("child command parses");
        // The verdict-affecting config must survive the round trip
        // exactly: equal fingerprints are what `merge` enforces.
        assert_eq!(rebuilt.config().fingerprint(), cmd.config().fingerprint());
        // And the neutral scheduling knobs ride along too.
        assert_eq!(rebuilt.threads, cmd.threads);
        assert_eq!(rebuilt.scheduler, cmd.scheduler);
        assert!(rebuilt.quiet);
    }

    #[test]
    fn shard_and_merge_round_trip_matches_single_process() {
        let dir = std::env::temp_dir().join("mcpath-cli-shard");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let bench_path = dir.join("m27.bench");
        let text = run(&parse_args(argv("gen m27")).expect("parse")).expect("gen");
        std::fs::write(&bench_path, text).expect("write");

        // Single-process canonical baseline.
        let baseline = dir.join("baseline.json");
        run(&parse_args(argv(&format!(
            "analyze {} --threads 1 --json {} --canonical --quiet",
            bench_path.display(),
            baseline.display()
        )))
        .expect("parse"))
        .expect("baseline analyze");

        // Run the three shards in-process and merge their ledgers.
        let mut ledger_args = String::new();
        for index in 0..3 {
            let ledger = dir.join(format!("shard-{index}.ndjson"));
            let out = run(&parse_args(argv(&format!(
                "shard {} --shard {index}/3 --trace-out {} --quiet",
                bench_path.display(),
                ledger.display()
            )))
            .expect("parse"))
            .expect("shard run");
            assert!(out.contains(&format!("shard {index}/3:")), "{out}");
            let _ = write!(ledger_args, " {}", ledger.display());
        }
        let merged = dir.join("merged.json");
        let out = run(&parse_args(argv(&format!(
            "merge {}{ledger_args} --json {} --canonical --quiet",
            bench_path.display(),
            merged.display()
        )))
        .expect("parse"))
        .expect("merge");
        assert!(out.contains("merged: 3 shard ledgers"), "{out}");
        assert_eq!(
            std::fs::read(&baseline).expect("read baseline"),
            std::fs::read(&merged).expect("read merged"),
            "merged canonical report must be byte-identical"
        );

        // A missing shard is refused with a clean message.
        let err = run(&parse_args(argv(&format!(
            "merge {} {}",
            bench_path.display(),
            dir.join("shard-0.ndjson").display()
        )))
        .expect("parse"))
        .unwrap_err();
        assert!(err.contains("missing shard"), "{err}");
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let cmd = parse_args(argv("analyze /no/such/file.bench")).expect("parse");
        let err = run(&cmd).unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&parse_args(argv("help")).expect("parse")).expect("run");
        assert!(out.contains("USAGE"));
    }
}
