//! The `analyze`, `shard` and `merge` subcommands: the full pipeline in
//! its single-process, cached, ECO-incremental, sharded-driver, one-shard
//! and ledger-merge shapes. All of them funnel through [`append_report`]
//! so the rendered report is identical regardless of how it was produced.

use super::render::{render_snapshot, render_step_table};
use super::{load, pair_name, Command};
use mcp_core::{
    analyze_cached_with, analyze_eco_with, analyze_resume_with, analyze_with, merge_shards_with,
    CasStore, McReport, PairClass, Step,
};
use mcp_netlist::Netlist;
use mcp_obs::{read_ledger_resilient_file, Ledger};
use std::fmt::Write as _;

/// Opens the artifact store named by `--cache-dir` / `MCPATH_CACHE_DIR`.
/// Returns `Ok(None)` when no cache directory is configured.
pub(crate) fn open_store(cmd: &Command) -> Result<Option<CasStore>, String> {
    match cmd.config().cache_dir {
        Some(dir) => CasStore::open(dir).map(Some).map_err(|e| e.to_string()),
        None => Ok(None),
    }
}

/// `analyze`: single-process, `--shards` driver, `--resume` replay,
/// `--cache-dir` warm rerun or `--eco` incremental re-analysis.
pub(crate) fn analyze(cmd: &Command, path: &str, out: &mut String) -> Result<(), String> {
    let nl = load(path)?;
    if let Some(old_path) = &cmd.eco {
        let old = load(old_path)?;
        let store = open_store(cmd)?
            .ok_or_else(|| "`--eco` needs --cache-dir (or MCPATH_CACHE_DIR)".to_owned())?;
        let obs = cmd.obs()?;
        let (report, summary) =
            analyze_eco_with(&old, &nl, &cmd.config(), &obs, &store).map_err(|e| e.to_string())?;
        if summary.full_run {
            let _ = writeln!(
                out,
                "eco: no usable baseline artifact for `{old_path}`; ran the full analysis"
            );
        } else {
            let _ = writeln!(
                out,
                "eco: {} changed / {} removed nodes; {} of {} sink groups re-verified, \
                 {} spliced ({} pairs re-verified, {} spliced)",
                summary.changed_nodes,
                summary.removed_nodes,
                summary.groups_reverified,
                summary.groups_total,
                summary.groups_spliced,
                summary.pairs_reverified,
                summary.pairs_spliced
            );
        }
        return append_report(out, cmd, &nl, &report);
    }
    if let Some(count) = cmd.shards {
        let report = run_sharded(cmd, path, &nl, count, out)?;
        return append_report(out, cmd, &nl, &report);
    }
    if cmd.resume.is_none() {
        if let Some(store) = open_store(cmd)? {
            let obs = cmd.obs()?;
            let report =
                analyze_cached_with(&nl, &cmd.config(), &obs, &store).map_err(|e| e.to_string())?;
            let counters = obs.snapshot().counters;
            if counters.cache_hits > 0 {
                let _ = writeln!(
                    out,
                    "cache: hit — {} verdicts spliced, zero engine work",
                    counters.cache_pairs_spliced
                );
            } else {
                let _ = writeln!(out, "cache: miss — artifacts persisted for the next run");
            }
            return append_report(out, cmd, &nl, &report);
        }
    }
    // Read the resume ledger *before* `obs()` opens `--trace-out`:
    // resuming a run onto its own ledger path is the natural CLI usage,
    // and `FileSink::create` truncates. Resilient read, so a final line
    // torn by the SIGKILL doesn't block the restart.
    let resume_ledger: Option<Ledger> = match &cmd.resume {
        Some(p) => Some(
            read_ledger_resilient_file(p).map_err(|e| format!("cannot read ledger `{p}`: {e}"))?,
        ),
        None => None,
    };
    let obs = cmd.obs()?;
    let report = match &resume_ledger {
        Some(ledger) => analyze_resume_with(&nl, &cmd.config(), &obs, ledger),
        None => analyze_with(&nl, &cmd.config(), &obs),
    }
    .map_err(|e| e.to_string())?;
    if resume_ledger.is_some() {
        let _ = writeln!(
            out,
            "resumed: {} verdicts restored from the ledger",
            obs.snapshot().counters.resume_pairs_loaded
        );
    }
    append_report(out, cmd, &nl, &report)
}

/// `shard`: verify one slice of the pair partition, journaling to
/// `--trace-out` (optionally restarting from `--resume`).
pub(crate) fn shard(cmd: &Command, path: &str, out: &mut String) -> Result<(), String> {
    let (index, count) = cmd
        .shard
        .ok_or_else(|| "`shard` needs --shard <I/N>".to_owned())?;
    let nl = load(path)?;
    // Same ordering constraint as `analyze --resume`: a killed shard
    // restarts onto its own ledger path, which `obs()` truncates on open.
    let resume_ledger: Option<Ledger> = match &cmd.resume {
        Some(p) => Some(
            read_ledger_resilient_file(p).map_err(|e| format!("cannot read ledger `{p}`: {e}"))?,
        ),
        None => None,
    };
    let obs = cmd.obs()?;
    let report = match &resume_ledger {
        Some(ledger) => analyze_resume_with(&nl, &cmd.config(), &obs, ledger),
        None => analyze_with(&nl, &cmd.config(), &obs),
    }
    .map_err(|e| e.to_string())?;
    let counters = obs.snapshot().counters;
    if resume_ledger.is_some() {
        let _ = writeln!(
            out,
            "resumed: {} verdicts restored from the ledger",
            counters.resume_pairs_loaded
        );
    }
    let _ = writeln!(
        out,
        "shard {index}/{count}: owns {} of {} surviving pairs",
        counters.shard_pairs_owned,
        counters.shard_pairs_owned + counters.shard_pairs_skipped
    );
    append_report(out, cmd, &nl, &report)
}

/// `merge`: combine per-shard ledgers into the canonical report.
pub(crate) fn merge(
    cmd: &Command,
    path: &str,
    ledgers: &[String],
    out: &mut String,
) -> Result<(), String> {
    let nl = load(path)?;
    let mut parsed = Vec::with_capacity(ledgers.len());
    for p in ledgers {
        parsed.push(
            read_ledger_resilient_file(p).map_err(|e| format!("cannot read ledger `{p}`: {e}"))?,
        );
    }
    let obs = cmd.obs()?;
    let report = merge_shards_with(&nl, &cmd.config(), &obs, &parsed).map_err(|e| e.to_string())?;
    let _ = writeln!(
        out,
        "merged: {} shard ledgers, {} verdicts restored",
        parsed.len(),
        obs.snapshot().counters.resume_pairs_loaded
    );
    append_report(out, cmd, &nl, &report)
}

/// Appends the standard `analyze`-style report output: the optional
/// `--json` dump, the summary lines, the per-pair listing (unless
/// `--quiet`), and the `--metrics` tables. Shared by `analyze`, `shard`
/// and `merge`, whose reports must render identically.
pub(crate) fn append_report(
    out: &mut String,
    cmd: &Command,
    nl: &Netlist,
    report: &McReport,
) -> Result<(), String> {
    if let Some(p) = &cmd.json {
        let text = if cmd.canonical {
            serde_json::to_string_pretty(&report.canonical())
        } else {
            serde_json::to_string_pretty(report)
        }
        .map_err(|e| format!("serialize: {e}"))?;
        std::fs::write(p, text).map_err(|e| format!("write `{p}`: {e}"))?;
    }
    let _ = writeln!(
        out,
        "{}: {} candidate pairs; {} multi-cycle, {} single-cycle, {} unknown",
        nl.name(),
        report.stats.candidates,
        report.stats.multi_total(),
        report.stats.single_total(),
        report.stats.unknown
    );
    let _ = writeln!(
        out,
        "steps: static resolved {} | sim dropped {} ({} words) | implication proved {} | search: {} single / {} multi",
        report.stats.multi_by_static,
        report.stats.single_by_sim,
        report.stats.sim_words,
        report.stats.multi_by_implication,
        report.stats.single_by_atpg,
        report.stats.multi_by_atpg
    );
    if !cmd.quiet {
        for p in &report.pairs {
            let verdict = match p.class {
                PairClass::MultiCycle { .. } => "multi-cycle ",
                PairClass::SingleCycle { .. } => "single-cycle",
                PairClass::Unknown => "UNKNOWN     ",
            };
            let step = match p.class {
                PairClass::MultiCycle { by } | PairClass::SingleCycle { by } => match by {
                    Step::RandomSim => "sim",
                    Step::Implication => "implication",
                    Step::Atpg => "search",
                    Step::Structural => "structural",
                },
                PairClass::Unknown => "aborted",
            };
            let _ = writeln!(
                out,
                "  {verdict} {:<24} [{step}]",
                pair_name(nl, p.src, p.dst)
            );
        }
    }
    if cmd.metrics {
        out.push('\n');
        out.push_str(&render_step_table(&report.stats));
        out.push('\n');
        out.push_str(&render_snapshot(&report.metrics));
    }
    Ok(())
}

/// `analyze --shards N`: fork one `mcpath shard` child process per
/// partition slice, wait for all of them, and merge their ledgers
/// in-process. The merged report is byte-identical (canonically) to a
/// single-process run; the shard ledgers live in a scratch directory
/// that is removed on success and kept on failure for post-mortems.
fn run_sharded(
    cmd: &Command,
    path: &str,
    nl: &Netlist,
    count: u64,
    out: &mut String,
) -> Result<McReport, String> {
    let exe =
        std::env::current_exe().map_err(|e| format!("cannot locate the mcpath binary: {e}"))?;
    let dir = std::env::temp_dir().join(format!("mcpath-shards-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("create `{}`: {e}", dir.display()))?;
    let flags = cmd.child_flags();

    let mut children = Vec::with_capacity(count as usize);
    let mut ledger_paths = Vec::with_capacity(count as usize);
    for index in 0..count {
        let ledger = dir.join(format!("shard-{index}.ndjson"));
        let child = std::process::Command::new(&exe)
            .arg("shard")
            .arg(path)
            .arg("--shard")
            .arg(format!("{index}/{count}"))
            .arg("--trace-out")
            .arg(&ledger)
            .args(&flags)
            .stdout(std::process::Stdio::null())
            .spawn()
            .map_err(|e| format!("spawn shard {index}/{count}: {e}"))?;
        children.push((index, child));
        ledger_paths.push(ledger);
    }
    for (index, mut child) in children {
        let status = child
            .wait()
            .map_err(|e| format!("wait for shard {index}/{count}: {e}"))?;
        if !status.success() {
            return Err(format!(
                "shard {index}/{count} failed with {status} (its ledger is under \
                 `{}`; fix the cause, resume it with `mcpath shard --resume`, then \
                 `mcpath merge`)",
                dir.display()
            ));
        }
    }

    let mut ledgers = Vec::with_capacity(ledger_paths.len());
    for p in &ledger_paths {
        ledgers.push(
            read_ledger_resilient_file(p)
                .map_err(|e| format!("cannot read ledger `{}`: {e}", p.display()))?,
        );
    }
    let obs = cmd.obs()?;
    let report = merge_shards_with(nl, &cmd.config(), &obs, &ledgers).map_err(|e| e.to_string())?;
    let _ = writeln!(
        out,
        "sharded: {count} processes, {} verdicts merged",
        obs.snapshot().counters.resume_pairs_loaded
    );
    let _ = std::fs::remove_dir_all(&dir);
    Ok(report)
}
