//! Table renderers shared by the report-producing subcommands: the
//! Table-2-style per-step breakdown, the engine-counter / span-timing
//! snapshot, the NDJSON journal aggregation and saved-report
//! pretty-printing.

use mcp_core::{McReport, StepStats};
use mcp_obs::{MetricsSnapshot, PairEvent};
use std::fmt::Write as _;
use std::time::Duration;

/// Formats a duration compactly for table cells.
pub(crate) fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{}us", d.as_micros())
    }
}

/// Renders [`StepStats`] as the paper's Table-2 layout: pairs resolved
/// and wall-clock per step. The pair-loop time covers implication and
/// search together (they interleave per pair), so it sits on the
/// `search` row.
pub(crate) fn render_step_table(s: &StepStats) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "per-step resolution ({} candidate pairs):",
        s.candidates
    );
    let _ = writeln!(
        out,
        "  {:<12} {:>7} {:>7} {:>8} {:>10} {:>12}",
        "step", "multi", "single", "unknown", "time", "throughput"
    );
    let _ = writeln!(
        out,
        "  {:<12} {:>7} {:>7} {:>8} {:>10} {:>12}",
        "structural",
        s.multi_by_static,
        0,
        0,
        fmt_dur(s.time_static),
        "-"
    );
    // The throughput cell names the kernel tier that produced it —
    // words/sec across tiers (jit vs interpreter) are not comparable.
    let sim_throughput = match s.sim_kernel {
        Some(k) => format!(
            "{} [{}]",
            fmt_words_per_sec(s.sim_words, s.time_sim),
            k.tag()
        ),
        None => fmt_words_per_sec(s.sim_words, s.time_sim),
    };
    let _ = writeln!(
        out,
        "  {:<12} {:>7} {:>7} {:>8} {:>10} {:>12}",
        "random_sim",
        0,
        s.single_by_sim,
        0,
        fmt_dur(s.time_sim),
        sim_throughput
    );
    let _ = writeln!(
        out,
        "  {:<12} {:>7} {:>7} {:>8} {:>10} {:>12}",
        "implication", s.multi_by_implication, s.single_by_implication, 0, "-", "-"
    );
    let _ = writeln!(
        out,
        "  {:<12} {:>7} {:>7} {:>8} {:>10} {:>12}",
        "search",
        s.multi_by_atpg,
        s.single_by_atpg,
        s.unknown,
        fmt_dur(s.time_pairs),
        "-"
    );
    let _ = writeln!(
        out,
        "  {:<12} {:>7} {:>7} {:>8} {:>10} {:>12}",
        "prepare",
        "",
        "",
        "",
        fmt_dur(s.time_prepare),
        "-"
    );
    let _ = writeln!(
        out,
        "  {:<12} {:>7} {:>7} {:>8} {:>10} {:>12}",
        "total",
        s.multi_total(),
        s.single_total(),
        s.unknown,
        fmt_dur(s.time_total),
        "-"
    );
    out
}

/// `words` 64-pattern simulation words over `t` as a human unit
/// (`"1.2Mw/s"`), or `"-"` when either side is zero.
fn fmt_words_per_sec(words: u64, t: Duration) -> String {
    let secs = t.as_secs_f64();
    if words == 0 || secs <= 0.0 {
        return "-".to_string();
    }
    let wps = words as f64 / secs;
    if wps >= 1e6 {
        format!("{:.1}Mw/s", wps / 1e6)
    } else if wps >= 1e3 {
        format!("{:.1}kw/s", wps / 1e3)
    } else {
        format!("{wps:.0}w/s")
    }
}

/// Renders a [`MetricsSnapshot`]: the non-zero engine counters followed
/// by accumulated span timings.
pub(crate) fn render_snapshot(m: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let c = &m.counters;
    let rows: [(&str, u64); 41] = [
        ("implications", c.implications),
        ("contradictions", c.contradictions),
        ("learned_implications", c.learned_implications),
        ("atpg_decisions", c.atpg_decisions),
        ("atpg_backtracks", c.atpg_backtracks),
        ("atpg_aborts", c.atpg_aborts),
        ("sat_decisions", c.sat_decisions),
        ("sat_propagations", c.sat_propagations),
        ("sat_conflicts", c.sat_conflicts),
        ("sat_learned", c.sat_learned),
        ("sat_restarts", c.sat_restarts),
        ("bdd_peak_nodes", c.bdd_peak_nodes),
        ("bdd_cache_lookups", c.bdd_cache_lookups),
        ("bdd_cache_hits", c.bdd_cache_hits),
        ("slice_builds", c.slice_builds),
        ("slice_cache_hits", c.slice_cache_hits),
        ("slice_nodes", c.slice_nodes),
        ("slice_vars", c.slice_vars),
        ("slice_nodes_peak", c.slice_nodes_peak),
        ("sim_words", c.sim_words),
        ("sim_pairs_dropped", c.sim_pairs_dropped),
        ("sim_passes", c.sim_passes),
        ("sim_tape_ops", c.sim_tape_ops),
        ("sim_fused_ops", c.sim_fused_ops),
        ("jit_compiles", c.jit_compiles),
        ("jit_bytes", c.jit_bytes),
        ("jit_batches", c.jit_batches),
        ("lint_rules_run", c.lint_rules_run),
        ("lint_violations", c.lint_violations),
        ("lint_nodes_visited", c.lint_nodes_visited),
        ("dataflow_consts", c.dataflow_consts),
        ("dataflow_iters", c.dataflow_iters),
        ("static_resolved", c.static_resolved),
        ("shard_pairs_owned", c.shard_pairs_owned),
        ("shard_pairs_skipped", c.shard_pairs_skipped),
        ("cache_hits", c.cache_hits),
        ("cache_misses", c.cache_misses),
        ("cache_invalidations", c.cache_invalidations),
        ("cache_pairs_spliced", c.cache_pairs_spliced),
        ("eco_groups_reverified", c.eco_groups_reverified),
        ("eco_groups_spliced", c.eco_groups_spliced),
    ];
    let _ = writeln!(out, "engine counters:");
    for (name, v) in rows {
        if v != 0 {
            let _ = writeln!(out, "  {name:<24} {v}");
        }
    }
    if c.bdd_cache_lookups != 0 {
        let _ = writeln!(
            out,
            "  {:<24} {:.1}%",
            "bdd_cache_hit_rate",
            c.bdd_cache_hit_rate() * 100.0
        );
    }
    if c.slice_builds != 0 {
        let _ = writeln!(
            out,
            "  {:<24} {:.1}",
            "slice_nodes_mean",
            c.slice_nodes_mean()
        );
    }
    let wps = m.sim_words_per_sec();
    if wps > 0.0 {
        let _ = writeln!(out, "  {:<24} {wps:.0}", "sim_words_per_sec");
    }
    let tags = m.sim_kernel_tags();
    if !tags.is_empty() {
        let _ = writeln!(out, "  {:<24} {}", "sim_kernels", tags.join(" "));
    }
    if !m.spans.is_empty() {
        let _ = writeln!(out, "spans:");
        // The BTreeMap's lexicographic order visits parents before their
        // children, so the `/`-separated paths render as an indented
        // tree: each entry prints its final segment at a depth matching
        // its ancestry, with bare `name/` lines for ancestors that have
        // no timer entry of their own.
        let mut prev: Vec<&str> = Vec::new();
        for (path, st) in &m.spans {
            let segs: Vec<&str> = path.split('/').collect();
            let shared = prev.iter().zip(&segs).take_while(|(a, b)| a == b).count();
            let ancestors = segs.iter().enumerate().take(segs.len() - 1).skip(shared);
            for (depth, seg) in ancestors {
                let _ = writeln!(out, "  {:pad$}{seg}/", "", pad = depth * 2);
            }
            let depth = segs.len() - 1;
            let mean = if st.count > 1 {
                format!("  mean {}", fmt_dur(st.mean()))
            } else {
                String::new()
            };
            let label = format!("{:pad$}{}", "", segs[depth], pad = depth * 2);
            let _ = writeln!(
                out,
                "  {label:<24} {:>10}  x{}{mean}",
                fmt_dur(st.total),
                st.count
            );
            prev = segs;
        }
    }
    out
}

/// Aggregates an NDJSON trace journal into a Table-2-style per-step
/// table plus an assignment-outcome histogram.
pub(crate) fn render_journal(events: &[PairEvent]) -> String {
    use std::collections::BTreeMap;
    #[derive(Default, Clone, Copy)]
    struct Row {
        multi: u64,
        single: u64,
        unknown: u64,
        micros: u64,
        /// Summed `slice_nodes` over the events that carried one.
        slice_nodes: u64,
        sliced_events: u64,
    }
    impl Row {
        /// Mean slice size over the sliced events, rendered `-` when the
        /// step never ran on a slice.
        fn slice_mean(&self) -> String {
            if self.sliced_events == 0 {
                "-".to_owned()
            } else {
                format!("{:.0}", self.slice_nodes as f64 / self.sliced_events as f64)
            }
        }
    }
    let mut steps: BTreeMap<&str, Row> = BTreeMap::new();
    let mut outcomes: BTreeMap<&str, u64> = BTreeMap::new();
    let mut kernels: BTreeMap<&str, u64> = BTreeMap::new();
    for e in events {
        if let Some(k) = &e.kernel {
            *kernels.entry(k.as_str()).or_default() += 1;
        }
        let entry = steps.entry(e.step.as_str()).or_default();
        match e.class.as_str() {
            "multi" => entry.multi += 1,
            "single" => entry.single += 1,
            _ => entry.unknown += 1,
        }
        entry.micros += e.micros;
        if let Some(n) = e.slice_nodes {
            entry.slice_nodes += n;
            entry.sliced_events += 1;
        }
        for a in &e.assignments {
            *outcomes.entry(a.outcome.as_str()).or_default() += 1;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "trace journal: {} pair events", events.len());
    let _ = writeln!(
        out,
        "  {:<12} {:>7} {:>7} {:>8} {:>10} {:>9}",
        "step", "multi", "single", "unknown", "time", "slice"
    );
    // Pipeline order first, then anything unexpected.
    let known = ["structural", "random_sim", "implication", "atpg"];
    let ordered = known
        .iter()
        .filter_map(|&k| steps.get_key_value(k))
        .chain(steps.iter().filter(|(k, _)| !known.contains(k)));
    let mut total = Row::default();
    for (step, &r) in ordered {
        total.multi += r.multi;
        total.single += r.single;
        total.unknown += r.unknown;
        total.micros += r.micros;
        total.slice_nodes += r.slice_nodes;
        total.sliced_events += r.sliced_events;
        let _ = writeln!(
            out,
            "  {:<12} {:>7} {:>7} {:>8} {:>10} {:>9}",
            step,
            r.multi,
            r.single,
            r.unknown,
            fmt_dur(Duration::from_micros(r.micros)),
            r.slice_mean()
        );
    }
    let _ = writeln!(
        out,
        "  {:<12} {:>7} {:>7} {:>8} {:>10} {:>9}",
        "total",
        total.multi,
        total.single,
        total.unknown,
        fmt_dur(Duration::from_micros(total.micros)),
        total.slice_mean()
    );
    if !kernels.is_empty() {
        // Only sim-resolved events carry a kernel tag; cached splices
        // and structural verdicts stay untagged by design.
        let list: Vec<String> = kernels.iter().map(|(k, v)| format!("{k}={v}")).collect();
        let _ = writeln!(out, "sim kernels: {}", list.join(" "));
    }
    if !outcomes.is_empty() {
        let list: Vec<String> = outcomes.iter().map(|(k, v)| format!("{k}={v}")).collect();
        let _ = writeln!(out, "assignment outcomes: {}", list.join(" "));
    }
    out
}

/// Pretty-prints a saved JSON artifact: either a full [`McReport`] (as
/// written by `--json`) or a bare [`MetricsSnapshot`].
pub(crate) fn render_saved_report(path: &str, text: &str) -> Result<String, String> {
    if let Ok(report) = serde_json::from_str::<McReport>(text) {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: saved report with {} pairs",
            report.circuit,
            report.pairs.len()
        );
        out.push_str(&render_step_table(&report.stats));
        out.push('\n');
        out.push_str(&render_snapshot(&report.metrics));
        Ok(out)
    } else if let Ok(snap) = serde_json::from_str::<MetricsSnapshot>(text) {
        Ok(render_snapshot(&snap))
    } else {
        Err(format!(
            "`{path}` is neither a saved analyze report nor a metrics snapshot"
        ))
    }
}
