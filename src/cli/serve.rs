//! The `serve` subcommand: a minimal analysis server answering NDJSON
//! requests over a Unix domain socket.
//!
//! One request per line, one JSON response line per request:
//!
//! ```text
//! -> {"op":"analyze","path":"s1423.bench"}
//! <- {"ok":true,"circuit":"s1423","cache_hit":true,"report":{...}}
//! -> {"op":"analyze","path":"s1423_eco.bench","eco":"s1423.bench"}
//! <- {"ok":true,"circuit":"s1423_eco","cache_hit":false,"report":{...}}
//! -> {"op":"shutdown"}
//! <- {"ok":true}
//! ```
//!
//! The artifact store named by `--cache-dir` stays resident for the
//! server's lifetime, so a repeat request for an unchanged netlist is a
//! pure cache replay and an `eco` request re-verifies only the touched
//! sink groups. The `report` field is the canonical form (timings
//! zeroed), byte-identical to `analyze --json --canonical` output.
//! Malformed requests get an `{"ok":false,"error":...}` line; they never
//! take the server down.

use super::{load, Command};
use mcp_core::{analyze_cached_with, analyze_eco_with, CasLock, CasStore};
use serde::Content;
use std::io::{BufRead, BufReader, Write as _};
use std::os::unix::net::{UnixListener, UnixStream};

/// `serve`: accept connections on `socket` until a `shutdown` request.
pub(crate) fn serve(cmd: &Command, socket: &str, out: &mut String) -> Result<(), String> {
    let store = CasStore::open(
        cmd.config()
            .cache_dir
            .ok_or_else(|| "`serve` needs --cache-dir".to_owned())?,
    )
    .map_err(|e| e.to_string())?;
    // Mark the store as held by a live process so `cache gc` refuses to
    // evict entries out from under resident requests. Released on drop
    // when the accept loop ends; a crash leaves a stale lock that the
    // next acquire or gc breaks by pid liveness.
    let _lock = CasLock::acquire(&store).map_err(|e| e.to_string())?;
    // A stale socket file from a crashed server would make bind fail.
    let _ = std::fs::remove_file(socket);
    let listener =
        UnixListener::bind(socket).map_err(|e| format!("cannot bind `{socket}`: {e}"))?;
    eprintln!(
        "mcpath serve: listening on `{socket}` (cache: {})",
        store.root().display()
    );
    let mut requests = 0u64;
    'accept: for conn in listener.incoming() {
        let stream = match conn {
            Ok(s) => s,
            Err(e) => {
                eprintln!("mcpath serve: accept failed: {e}");
                continue;
            }
        };
        match handle_connection(cmd, &store, stream, &mut requests) {
            Ok(true) => break 'accept,
            Ok(false) => {}
            Err(e) => eprintln!("mcpath serve: connection error: {e}"),
        }
    }
    let _ = std::fs::remove_file(socket);
    out.push_str(&format!("served {requests} request(s) on `{socket}`\n"));
    Ok(())
}

/// Answers every request line on one connection. Returns `Ok(true)` when
/// a `shutdown` request was served and the accept loop should stop.
fn handle_connection(
    cmd: &Command,
    store: &CasStore,
    stream: UnixStream,
    requests: &mut u64,
) -> Result<bool, String> {
    let reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("clone stream: {e}"))?,
    );
    let mut writer = stream;
    for line in reader.lines() {
        let line = line.map_err(|e| format!("read request: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        *requests += 1;
        let (response, shutdown) = respond(cmd, store, &line);
        writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .map_err(|e| format!("write response: {e}"))?;
        if shutdown {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Builds the single-line JSON response for one request line; the bool
/// is the shutdown signal.
fn respond(cmd: &Command, store: &CasStore, line: &str) -> (String, bool) {
    match handle_request(cmd, store, line) {
        Ok(Reply::Report { circuit, hit, json }) => (
            format!(
                "{{\"ok\":true,\"circuit\":{},\"cache_hit\":{hit},\"report\":{json}}}",
                quote(&circuit)
            ),
            false,
        ),
        Ok(Reply::Shutdown) => ("{\"ok\":true}".to_owned(), true),
        Err(e) => (format!("{{\"ok\":false,\"error\":{}}}", quote(&e)), false),
    }
}

/// JSON-escapes a string through the vendored serializer.
fn quote(s: &str) -> String {
    serde_json::to_string(&s).unwrap_or_else(|_| "\"<unrenderable>\"".to_owned())
}

enum Reply {
    Report {
        circuit: String,
        hit: bool,
        json: String,
    },
    Shutdown,
}

fn handle_request(cmd: &Command, store: &CasStore, line: &str) -> Result<Reply, String> {
    let content =
        serde_json::from_str_content(line).map_err(|e| format!("unparseable request: {e}"))?;
    let entries = content
        .as_map()
        .ok_or_else(|| "request is not a JSON object".to_owned())?;
    let field = |name: &str| -> Option<String> {
        entries.iter().find(|(k, _)| k == name).and_then(|(_, v)| {
            if let Content::Str(s) = v {
                Some(s.clone())
            } else {
                None
            }
        })
    };
    let op = field("op").unwrap_or_else(|| "analyze".to_owned());
    match op.as_str() {
        "shutdown" => Ok(Reply::Shutdown),
        "analyze" => {
            let path = field("path").ok_or_else(|| "`analyze` needs a `path`".to_owned())?;
            let nl = load(&path)?;
            let obs = mcp_obs::ObsCtx::new();
            let report = match field("eco") {
                Some(old_path) => {
                    let old = load(&old_path)?;
                    analyze_eco_with(&old, &nl, &cmd.config(), &obs, store)
                        .map(|(report, _)| report)
                        .map_err(|e| e.to_string())?
                }
                None => analyze_cached_with(&nl, &cmd.config(), &obs, store)
                    .map_err(|e| e.to_string())?,
            };
            let hit = obs.snapshot().counters.cache_hits > 0;
            let json = serde_json::to_string(&report.canonical())
                .map_err(|e| format!("serialize: {e}"))?;
            Ok(Reply::Report {
                circuit: nl.name().to_owned(),
                hit,
                json,
            })
        }
        other => Err(format!("unknown op `{other}`")),
    }
}
