//! The `glitch` subcommand: hunt for a dynamic glitch at a specific FF
//! pair's sink under random transport delays and dump the waveform as
//! VCD.

use super::load;
use mcp_netlist::Netlist;
use std::fmt::Write as _;

pub(crate) const GLITCH_TRIALS: usize = 512;

/// `glitch`: sample random edges where `src` toggles until `dst`'s D
/// input glitches, then write the VCD waveform.
pub(crate) fn glitch(
    path: &str,
    src: &str,
    dst: &str,
    vcd_path: &str,
    out: &mut String,
) -> Result<(), String> {
    let nl = load(path)?;
    let find_ff = |name: &str| -> Result<usize, String> {
        nl.find_node(name)
            .and_then(|id| nl.ff_index(id))
            .ok_or_else(|| format!("`{name}` is not a flip-flop of the circuit"))
    };
    let (i, j) = (find_ff(src)?, find_ff(dst)?);
    match hunt_glitch(&nl, i, j) {
        None => {
            let _ = writeln!(
                out,
                "no dynamic glitch found at {dst}'s D input in {} sampled \
                 edges where {src} toggles",
                GLITCH_TRIALS
            );
        }
        Some((initial, events, transitions)) => {
            let mut file =
                std::fs::File::create(vcd_path).map_err(|e| format!("create `{vcd_path}`: {e}"))?;
            mcp_sim::vcd::write_vcd(&nl, &initial, &events, &mut file)
                .map_err(|e| format!("write `{vcd_path}`: {e}"))?;
            let _ = writeln!(
                out,
                "glitch found: {dst}'s D input transitioned {transitions} times; \
                 waveform written to {vcd_path}"
            );
        }
    }
    Ok(())
}

/// Samples random pre/post-edge value pairs where FF `i` toggles, under
/// random transport delays, until FF `j`'s D input glitches; returns the
/// initial values, the event trace and the transition count.
#[allow(clippy::type_complexity)]
fn hunt_glitch(
    nl: &Netlist,
    i: usize,
    j: usize,
) -> Option<(Vec<bool>, Vec<(u64, mcp_netlist::NodeId, bool)>, u32)> {
    use mcp_sim::{DelaySim, ParallelSim};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(0x1905_0607);
    let mut psim = ParallelSim::new(nl);
    let dst = nl.ff_d_input(j);
    let mut trials = 0usize;
    while trials < GLITCH_TRIALS {
        psim.randomize_state(&mut rng);
        psim.randomize_inputs(&mut rng);
        let s0: Vec<u64> = (0..nl.num_ffs()).map(|k| psim.state(k)).collect();
        psim.eval();
        let in0: Vec<u64> = nl.inputs().iter().map(|&pi| psim.value(pi)).collect();
        let s1: Vec<u64> = (0..nl.num_ffs()).map(|k| psim.next_state(k)).collect();
        let toggles = s0[i] ^ s1[i];
        for lane in 0..64 {
            if toggles >> lane & 1 == 0 || trials >= GLITCH_TRIALS {
                continue;
            }
            trials += 1;
            let bit = |w: u64| w >> lane & 1 == 1;
            let pis0: Vec<bool> = in0.iter().map(|&w| bit(w)).collect();
            let ffs0: Vec<bool> = s0.iter().map(|&w| bit(w)).collect();
            let ffs1: Vec<bool> = s1.iter().map(|&w| bit(w)).collect();
            let pis1: Vec<bool> = (0..nl.num_inputs()).map(|_| rng.random()).collect();
            let mut dsim = DelaySim::new(nl);
            for &g in nl.topo_gates() {
                dsim.set_delay(g, rng.random_range(1..16));
            }
            dsim.record_waveforms(true);
            dsim.init(&pis0, &ffs0);
            let initial: Vec<bool> = nl.nodes().map(|(id, _)| dsim.value(id)).collect();
            let report = dsim.edge(&pis1, &ffs1);
            if report.glitched(dst) {
                return Some((initial, report.events().to_vec(), report.transitions(dst)));
            }
        }
    }
    None
}
