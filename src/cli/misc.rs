//! The smaller subcommands: `stats`, `stats --compare`, `trace`, `gen`,
//! `hazard`, `sweep`, `dot`, `lint`, `sdc`, `deps` and `kcycle`.

use super::render::{render_journal, render_saved_report};
use super::{load, pair_name, Command, OutputFormat};
use mcp_core::{
    analyze, check_hazards, max_cycle_budgets, sensitization_dependencies, to_sdc, CycleBudget,
    HazardCheck, McReport, SdcOptions,
};
use mcp_netlist::bench;
use mcp_obs::{
    chrome_trace, chrome_trace_from_totals, compare_artifacts, read_journal_file,
    read_ledger_resilient_file, CompareConfig, MetricsSnapshot,
};
use std::fmt::Write as _;

/// `stats`: structural statistics of a `.bench` file, or the
/// pretty-printed observability data of a saved JSON / NDJSON artifact.
pub(crate) fn stats(_cmd: &Command, path: &str, out: &mut String) -> Result<(), String> {
    if path.ends_with(".ndjson") {
        let events =
            read_journal_file(path).map_err(|e| format!("cannot read journal `{path}`: {e}"))?;
        out.push_str(&render_journal(&events));
    } else if path.ends_with(".json") {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        out.push_str(&render_saved_report(path, &text)?);
    } else {
        let nl = load(path)?;
        let s = nl.stats();
        let _ = writeln!(
            out,
            "{}: inputs={} outputs={} ffs={} gates={} depth={} ff_pairs={}",
            nl.name(),
            s.inputs,
            s.outputs,
            s.ffs,
            s.gates,
            nl.depth(),
            s.ff_pairs
        );
    }
    Ok(())
}

/// `stats --compare`: diff the deterministic counters of two artifacts.
pub(crate) fn compare(cmd: &Command, old: &str, new: &str, out: &mut String) -> Result<(), String> {
    let old_text = std::fs::read_to_string(old).map_err(|e| format!("cannot read `{old}`: {e}"))?;
    let new_text = std::fs::read_to_string(new).map_err(|e| format!("cannot read `{new}`: {e}"))?;
    let cmp = compare_artifacts(
        &old_text,
        &new_text,
        CompareConfig {
            threshold_pct: cmd.threshold,
        },
    )
    .map_err(|e| e.to_string())?;
    let rendered = cmp.render();
    // Regressions fail the command (exit code 1) so CI can gate
    // directly on `mcpath stats --compare`.
    if cmp.regressions() > 0 {
        return Err(format!("counter regression(s) detected:\n{rendered}"));
    }
    out.push_str(&rendered);
    Ok(())
}

/// `trace`: export an artifact's span tree as Chrome trace-event JSON.
pub(crate) fn trace(cmd: &Command, path: &str, out: &mut String) -> Result<(), String> {
    if cmd.format != OutputFormat::Chrome {
        return Err("`trace` only supports --format chrome".into());
    }
    let doc = if path.ends_with(".ndjson") {
        let ledger = read_ledger_resilient_file(path)
            .map_err(|e| format!("cannot read ledger `{path}`: {e}"))?;
        if ledger.spans.is_empty() {
            return Err(format!(
                "`{path}` carries no span events — the span tree is written \
                 when the run completes (re-run `analyze --trace-out` to the \
                 end, or `trace` the saved report for span totals)"
            ));
        }
        chrome_trace(&ledger.spans)
    } else {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        // Saved artifacts carry only span *totals*; degrade to a
        // proportional single-track layout.
        if let Ok(report) = serde_json::from_str::<McReport>(&text) {
            chrome_trace_from_totals(&report.metrics.spans)
        } else if let Ok(snap) = serde_json::from_str::<MetricsSnapshot>(&text) {
            chrome_trace_from_totals(&snap.spans)
        } else {
            return Err(format!(
                "`{path}` is neither an NDJSON ledger, a saved analyze \
                 report, nor a metrics snapshot"
            ));
        }
    };
    let text = serde_json::to_string_pretty(&doc).map_err(|e| format!("serialize: {e}"))?;
    out.push_str(&text);
    out.push('\n');
    Ok(())
}

/// `gen`: emit a synthetic suite circuit as `.bench` text.
pub(crate) fn gen(name: &str, out: &mut String) -> Result<(), String> {
    let nl = mcp_gen::suite::standard_suite()
        .into_iter()
        .find(|n| n.name() == name)
        .ok_or_else(|| format!("unknown suite circuit `{name}` (try m27..m38584)"))?;
    out.push_str(&bench::to_bench(&nl));
    Ok(())
}

/// `hazard`: analyze, then validate the multi-cycle pairs against static
/// hazards with both criteria.
pub(crate) fn hazard(cmd: &Command, path: &str, out: &mut String) -> Result<(), String> {
    let nl = load(path)?;
    let report = analyze(&nl, &cmd.config()).map_err(|e| e.to_string())?;
    let _ = writeln!(
        out,
        "{}: {} multi-cycle pairs by the MC condition",
        nl.name(),
        report.stats.multi_total()
    );
    for check in [HazardCheck::Sensitization, HazardCheck::CoSensitization] {
        let hz = check_hazards(&nl, &report, check);
        let _ = writeln!(
            out,
            "{check:?}: {} robust, {} potentially hazardous",
            hz.robust.len(),
            hz.demoted.len()
        );
        if !cmd.quiet {
            for &(i, j) in &hz.demoted {
                let _ = writeln!(out, "  demoted {}", pair_name(&nl, i, j));
            }
        }
    }
    Ok(())
}

/// `sweep`: simplify a `.bench` file and emit the result.
pub(crate) fn sweep(path: &str, out: &mut String) -> Result<(), String> {
    let nl = load(path)?;
    let (swept, stats) = mcp_netlist::sweep(&nl);
    eprintln!(
        "# sweep: {} -> {} gates ({} const-folded, {} wires elided, \
         {} duplicates merged, {} dead dropped)",
        stats.gates_before,
        stats.gates_after,
        stats.folded_constant,
        stats.elided_wire,
        stats.merged_duplicate,
        stats.dropped_dead
    );
    out.push_str(&bench::to_bench(&swept));
    Ok(())
}

/// `dot`: render a `.bench` file as Graphviz DOT.
pub(crate) fn dot(path: &str, out: &mut String) -> Result<(), String> {
    let nl = load(path)?;
    out.push_str(&mcp_netlist::dot::to_dot(
        &nl,
        &mcp_netlist::dot::DotOptions::default(),
    ));
    Ok(())
}

/// `lint`: run the full rule set and gate on error-level findings.
pub(crate) fn lint(cmd: &Command, path: &str, out: &mut String) -> Result<(), String> {
    // Parse permissively: the whole point of `lint` is to report on
    // netlists the strict loader would reject.
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let nl = bench::parse_unchecked(path, &text).map_err(|e| e.to_string())?;
    let registry = mcp_lint::Registry::with_default_rules();
    // `--deny`/`--allow` must name real rules — a typo silently doing
    // nothing would defeat the point of a CI gate.
    for rule in cmd.deny.iter().chain(&cmd.allow) {
        if !registry.rules().any(|r| r.id() == rule) {
            return Err(format!("unknown lint rule `{rule}`"));
        }
    }
    let mut lint_cfg = mcp_lint::LintConfig::default();
    for rule in &cmd.deny {
        lint_cfg = lint_cfg.deny(rule);
    }
    for rule in &cmd.allow {
        lint_cfg = lint_cfg.disable(rule);
    }
    let mut report = registry.run(&nl, &lint_cfg);
    // Error-level findings fail the command (exit code 1), judged on the
    // *full* report: a cap on the rendered list must not let errors
    // beyond it slip through the gate.
    let gate_failed = report.has_errors();
    let total = report.len();
    if let Some(cap) = cmd.max_diags {
        report.diagnostics.truncate(cap);
    }
    let rendered = match cmd.format {
        OutputFormat::Text => {
            let mut text = report.render_text(nl.name());
            if report.len() < total {
                let _ = writeln!(
                    text,
                    "(showing {} of {total} findings; raise --max-diags for the rest)",
                    report.len()
                );
            }
            text
        }
        OutputFormat::Json => report.render_json(),
        OutputFormat::Chrome => {
            return Err("`lint` supports --format text|json only".into());
        }
    };
    if gate_failed {
        return Err(rendered);
    }
    out.push_str(&rendered);
    Ok(())
}

/// `sdc`: analyze and emit SDC `set_multicycle_path` constraints.
pub(crate) fn sdc(
    cmd: &Command,
    path: &str,
    robust: Option<HazardCheck>,
    out: &mut String,
) -> Result<(), String> {
    let nl = load(path)?;
    let report = analyze(&nl, &cmd.config()).map_err(|e| e.to_string())?;
    let robust_only = robust.map(|check| check_hazards(&nl, &report, check));
    let text = to_sdc(
        &nl,
        &report,
        &SdcOptions {
            robust_only,
            cycles: cmd.cycles,
        },
    );
    // Round-trip the emitted constraints through the validator before
    // handing them to the user: every `-from`/`-to` must name a real FF,
    // lie on a combinational path, and appear in the verified pair list.
    // A failure here is an internal emitter/report mismatch, never user
    // error.
    let check = mcp_lint::validate_sdc(&nl, &report.multi_cycle_pairs(), &text);
    if check.has_errors() {
        return Err(format!(
            "emitted SDC failed self-validation (internal error):\n{}",
            check.render_text(path)
        ));
    }
    out.push_str(&text);
    Ok(())
}

/// `deps`: report the cross-pair dependencies of the
/// sensitization-validated multi-cycle pairs.
pub(crate) fn deps(cmd: &Command, path: &str, out: &mut String) -> Result<(), String> {
    let nl = load(path)?;
    let report = analyze(&nl, &cmd.config()).map_err(|e| e.to_string())?;
    let deps = sensitization_dependencies(&nl, &report);
    if let Some(p) = &cmd.json {
        let text = serde_json::to_string_pretty(&deps).map_err(|e| format!("serialize: {e}"))?;
        std::fs::write(p, text).map_err(|e| format!("write `{p}`: {e}"))?;
    }
    let conditional = deps.deps.iter().filter(|(_, d)| !d.is_empty()).count();
    let _ = writeln!(
        out,
        "{}: {} sensitization-robust pairs, {} with cross-pair dependencies",
        nl.name(),
        deps.deps.len(),
        conditional
    );
    if !cmd.quiet {
        for ((i, j), d) in &deps.deps {
            if d.is_empty() {
                continue;
            }
            let list: Vec<String> = d.iter().map(|&(k, l)| pair_name(&nl, k, l)).collect();
            let _ = writeln!(
                out,
                "  {} depends on {}",
                pair_name(&nl, *i, *j),
                list.join(", ")
            );
        }
    }
    Ok(())
}

/// `kcycle`: sweep the cycle budget of every multi-cycle pair.
pub(crate) fn kcycle(
    cmd: &Command,
    path: &str,
    max_k: u32,
    out: &mut String,
) -> Result<(), String> {
    let nl = load(path)?;
    if max_k < 2 {
        return Err("--max-k must be at least 2".into());
    }
    // Classic 2-cycle analysis selects the multi-cycle pairs; the budget
    // computation then brackets each pair's maximum.
    let report = analyze(&nl, &cmd.config()).map_err(|e| e.to_string())?;
    let _ = writeln!(
        out,
        "{}: cycle budgets of the {} multi-cycle pairs (limit {max_k}):",
        nl.name(),
        report.stats.multi_total()
    );
    // One shared expansion, pair sweeps distributed over `--threads`
    // workers; results come back sorted by pair.
    let budgets = max_cycle_budgets(&nl, &report.multi_cycle_pairs(), max_k, &cmd.config())
        .map_err(|e| e.to_string())?;
    for ((i, j), budget) in budgets {
        let desc = match budget {
            CycleBudget::SingleCycle => "single-cycle (!)".to_owned(),
            CycleBudget::Exact { verified } => format!("exactly {verified} cycles"),
            CycleBudget::AtLeast { at_least } => format!("{at_least}+ cycles"),
            CycleBudget::Unknown => "unknown (search aborted)".to_owned(),
        };
        let _ = writeln!(out, "  {:<24} {desc}", pair_name(&nl, i, j));
    }
    Ok(())
}
