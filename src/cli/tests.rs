use super::render::render_snapshot;
use super::*;
use std::fmt::Write as _;

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(str::to_owned).collect()
}

#[test]
fn parses_analyze_with_options() {
    let cmd = parse_args(argv(
        "analyze foo.bench --engine sat --cycles 3 --backtracks 99 --threads 4 --quiet",
    ))
    .expect("parse");
    assert_eq!(cmd.action, Action::Analyze("foo.bench".into()));
    assert_eq!(cmd.engine, Engine::Sat);
    assert_eq!(cmd.cycles, 3);
    assert_eq!(cmd.backtracks, 99);
    assert_eq!(cmd.threads, 4);
    assert!(cmd.quiet);
}

#[test]
fn parses_scheduler_policy() {
    let cmd = parse_args(argv("analyze f.bench")).expect("parse");
    assert_eq!(cmd.scheduler, Scheduler::WorkSteal, "stealing is default");
    assert_eq!(cmd.config().scheduler, Scheduler::WorkSteal);
    let cmd = parse_args(argv("analyze f.bench --scheduler static")).expect("parse");
    assert_eq!(cmd.scheduler, Scheduler::Static);
    assert_eq!(cmd.config().scheduler, Scheduler::Static);
    let cmd = parse_args(argv("analyze f.bench --scheduler steal")).expect("parse");
    assert_eq!(cmd.scheduler, Scheduler::WorkSteal);
    assert!(parse_args(argv("analyze f.bench --scheduler fifo")).is_err());
    assert!(parse_args(argv("analyze f.bench --scheduler")).is_err());
}

#[test]
fn rejects_unknown_flags_and_engines() {
    assert!(parse_args(argv("analyze f.bench --frobnicate")).is_err());
    assert!(parse_args(argv("analyze f.bench --engine quantum")).is_err());
    assert!(parse_args(argv("kcycle f.bench")).is_err(), "needs --max-k");
    assert!(parse_args(argv("teleport f.bench")).is_err());
    assert!(parse_args(Vec::<String>::new()).is_err());
}

#[test]
fn gen_emits_parseable_bench() {
    let cmd = parse_args(argv("gen m27")).expect("parse");
    let text = run(&cmd).expect("run");
    let nl = bench::parse("m27", &text).expect("generated bench parses");
    assert!(nl.num_ffs() >= 3);
}

#[test]
fn gen_rejects_unknown_circuit() {
    let cmd = parse_args(argv("gen s99999")).expect("parse");
    assert!(run(&cmd).is_err());
}

#[test]
fn analyze_runs_on_a_generated_file() {
    let dir = std::env::temp_dir().join("mcpath-cli-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("m27.bench");
    let text = run(&parse_args(argv("gen m27")).expect("parse")).expect("gen");
    std::fs::write(&path, text).expect("write");

    let cmd = parse_args(argv(&format!("analyze {}", path.display()))).expect("parse");
    let out = run(&cmd).expect("analyze");
    assert!(out.contains("multi-cycle"), "{out}");

    let cmd = parse_args(argv(&format!("hazard {} --quiet", path.display()))).expect("parse");
    let out = run(&cmd).expect("hazard");
    assert!(out.contains("Sensitization"), "{out}");

    let cmd = parse_args(argv(&format!("kcycle {} --max-k 4", path.display()))).expect("parse");
    let out = run(&cmd).expect("kcycle");
    assert!(out.contains("cycles"), "{out}");
    // The budget sweep is deterministic under parallel scheduling.
    for extra in ["--threads 8", "--threads 8 --scheduler static"] {
        let cmd = parse_args(argv(&format!(
            "kcycle {} --max-k 4 {extra}",
            path.display()
        )))
        .expect("parse");
        assert_eq!(run(&cmd).expect("kcycle parallel"), out, "{extra}");
    }

    let cmd = parse_args(argv(&format!("sdc {}", path.display()))).expect("parse");
    let out = run(&cmd).expect("sdc");
    assert!(out.contains("set_multicycle_path"), "{out}");
    let cmd = parse_args(argv(&format!("sdc {} --robust cosens", path.display()))).expect("parse");
    let out = run(&cmd).expect("sdc robust");
    assert!(out.contains("hazard-robust"), "{out}");

    let cmd = parse_args(argv(&format!("deps {}", path.display()))).expect("parse");
    let out = run(&cmd).expect("deps");
    assert!(out.contains("sensitization-robust"), "{out}");

    let cmd = parse_args(argv(&format!("stats {}", path.display()))).expect("parse");
    let out = run(&cmd).expect("stats");
    assert!(out.contains("ff_pairs"), "{out}");
}

#[test]
fn dot_and_glitch_subcommands_work() {
    let dir = std::env::temp_dir().join("mcpath-cli-test2");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("fig3.bench");
    let nl = mcp_gen::circuits::fig3();
    std::fs::write(&path, bench::to_bench(&nl)).expect("write");

    let cmd = parse_args(argv(&format!("sweep {}", path.display()))).expect("parse");
    let out = run(&cmd).expect("sweep");
    let swept = bench::parse("swept", &out).expect("swept output parses");
    assert_eq!(swept.num_ffs(), nl.num_ffs());

    let cmd = parse_args(argv(&format!("dot {}", path.display()))).expect("parse");
    let out = run(&cmd).expect("dot");
    assert!(out.starts_with("digraph"), "{out}");

    let vcd = dir.join("glitch.vcd");
    let cmd = parse_args(argv(&format!(
        "glitch {} FF3 FF2 {}",
        path.display(),
        vcd.display()
    )))
    .expect("parse");
    let out = run(&cmd).expect("glitch");
    assert!(out.contains("glitch found"), "{out}");
    let text = std::fs::read_to_string(&vcd).expect("vcd written");
    assert!(text.contains("$enddefinitions"));

    // A non-FF name is a clean error.
    let cmd = parse_args(argv(&format!(
        "glitch {} EN2 FF2 {}",
        path.display(),
        vcd.display()
    )))
    .expect("parse");
    assert!(run(&cmd).is_err());
}

#[test]
fn lint_subcommand_reports_and_gates() {
    let dir = std::env::temp_dir().join("mcpath-cli-lint");
    std::fs::create_dir_all(&dir).expect("tmp dir");

    // A clean generated circuit lints without findings.
    let clean = dir.join("m27.bench");
    let text = run(&parse_args(argv("gen m27")).expect("parse")).expect("gen");
    std::fs::write(&clean, text).expect("write");
    let out = run(&parse_args(argv(&format!("lint {}", clean.display()))).expect("parse"))
        .expect("lint clean");
    assert!(out.contains("0 error(s)"), "{out}");

    // JSON format is machine-parseable.
    let out =
        run(&parse_args(argv(&format!("lint {} --format json", clean.display()))).expect("parse"))
            .expect("lint json");
    assert!(
        serde_json::from_str::<mcp_lint::Diagnostics>(&out).is_ok(),
        "{out}"
    );
    assert!(parse_args(argv("lint f.bench --format yaml")).is_err());

    // A combinational cycle lints (permissive parse) and fails the
    // command with an error-level diagnostic...
    let cyclic = dir.join("cyclic.bench");
    std::fs::write(&cyclic, "OUTPUT(a)\na = NOT(b)\nb = NOT(a)\n").expect("write");
    let err =
        run(&parse_args(argv(&format!("lint {}", cyclic.display()))).expect("parse")).unwrap_err();
    assert!(err.contains("comb-cycle"), "{err}");

    // ...while `analyze` refuses the same file already at load time.
    let err = run(&parse_args(argv(&format!("analyze {}", cyclic.display()))).expect("parse"))
        .unwrap_err();
    assert!(err.contains("cyclic"), "{err}");
}

#[test]
fn no_lint_flag_reaches_the_config() {
    let cmd = parse_args(argv("analyze f.bench --no-lint")).expect("parse");
    assert!(cmd.no_lint);
    assert!(!cmd.config().lint);
    let cmd = parse_args(argv("analyze f.bench")).expect("parse");
    assert!(cmd.config().lint);
}

#[test]
fn no_static_classify_flag_reaches_the_config() {
    let cmd = parse_args(argv("analyze f.bench --no-static-classify")).expect("parse");
    assert!(cmd.no_static_classify);
    assert!(!cmd.config().static_classify);
    // Without the flag the default applies (on, unless the
    // MCPATH_NO_STATIC_CLASSIFY env var is set in this test
    // environment).
    let cmd = parse_args(argv("analyze f.bench")).expect("parse");
    assert_eq!(
        cmd.config().static_classify,
        McConfig::default().static_classify
    );
}

#[test]
fn lint_deny_allow_and_max_diags() {
    let dir = std::env::temp_dir().join("mcpath-cli-lint-flags");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    // A dangling FF (never marked as an output) is a Warn-level
    // finding by default.
    let dangling = dir.join("dangling.bench");
    std::fs::write(
        &dangling,
        "INPUT(a)\nINPUT(b)\nOUTPUT(o)\nq = DFF(g)\ng = NOT(a)\no = AND(a, b)\n",
    )
    .expect("write");

    // Warnings pass by default...
    let out = run(&parse_args(argv(&format!("lint {}", dangling.display()))).expect("parse"))
        .expect("lint warns only");
    assert!(out.contains("dangling-ff"), "{out}");
    assert!(out.contains("0 error(s)"), "{out}");

    // ...but `--deny` escalates the rule to a gating error...
    let err = run(&parse_args(argv(&format!(
        "lint {} --deny dangling-ff",
        dangling.display()
    )))
    .expect("parse"))
    .unwrap_err();
    assert!(err.contains("error[dangling-ff]"), "{err}");

    // ...and `--allow` suppresses it entirely.
    let out = run(&parse_args(argv(&format!(
        "lint {} --allow dangling-ff",
        dangling.display()
    )))
    .expect("parse"))
    .expect("lint allowed");
    assert!(!out.contains("dangling-ff"), "{out}");

    // `--max-diags 0` truncates the listing but keeps the total note.
    let out = run(
        &parse_args(argv(&format!("lint {} --max-diags 0", dangling.display()))).expect("parse"),
    )
    .expect("lint capped");
    assert!(!out.contains("dangling-ff"), "{out}");
    assert!(out.contains("showing 0 of"), "{out}");

    // The cap must not mask the error gate: a comb cycle still fails
    // even when its finding is cut from the listing.
    let cyclic = dir.join("cyclic.bench");
    std::fs::write(&cyclic, "OUTPUT(a)\na = NOT(b)\nb = NOT(a)\n").expect("write");
    let err =
        run(&parse_args(argv(&format!("lint {} --max-diags 0", cyclic.display()))).expect("parse"))
            .unwrap_err();
    assert!(err.contains("showing 0 of"), "{err}");

    // Typos in rule names are clean errors, not silent no-ops.
    for flag in ["--deny", "--allow"] {
        let err = run(&parse_args(argv(&format!(
            "lint {} {flag} no-such-rule",
            dangling.display()
        )))
        .expect("parse"))
        .unwrap_err();
        assert!(err.contains("unknown lint rule"), "{err}");
    }
    assert!(parse_args(argv("lint f.bench --max-diags abc")).is_err());
    assert!(parse_args(argv("lint f.bench --deny")).is_err());
}

#[test]
fn no_slice_flag_reaches_the_config() {
    let cmd = parse_args(argv("analyze f.bench --no-slice")).expect("parse");
    assert!(cmd.no_slice);
    assert!(!cmd.config().slice);
    // Without the flag the default applies (on, unless the
    // MCPATH_NO_SLICE env var is set in this test environment).
    let cmd = parse_args(argv("analyze f.bench")).expect("parse");
    assert_eq!(cmd.config().slice, McConfig::default().slice);
}

#[test]
fn sim_lanes_and_no_tape_flags_reach_the_config() {
    let cmd = parse_args(argv("analyze f.bench --sim-lanes 128 --no-tape")).expect("parse");
    assert_eq!(cmd.sim_lanes, Some(128));
    assert!(cmd.no_tape);
    let cfg = cmd.config();
    assert_eq!(cfg.sim_lanes(), 128);
    assert!(!cfg.sim.tape);
    // Without the flags the defaults apply (256 lanes / tape on,
    // unless MCPATH_SIM_LANES / MCPATH_NO_TAPE are set in this test
    // environment).
    let cmd = parse_args(argv("analyze f.bench")).expect("parse");
    assert_eq!(cmd.config().sim, McConfig::default().sim);
    // Non-numeric widths are parse errors; missing values too.
    assert!(parse_args(argv("analyze f.bench --sim-lanes abc")).is_err());
    assert!(parse_args(argv("analyze f.bench --sim-lanes")).is_err());
}

#[test]
fn sim_kernel_and_no_jit_flags_reach_the_config() {
    use mcp_sim::SimKernel;

    let cmd = parse_args(argv("analyze f.bench --sim-kernel fused")).expect("parse");
    assert_eq!(cmd.sim_kernel, Some(SimKernel::Fused));
    assert_eq!(cmd.config().sim.kernel, SimKernel::Fused);

    let cmd = parse_args(argv("analyze f.bench --sim-kernel tape")).expect("parse");
    assert_eq!(cmd.config().sim.kernel, SimKernel::Tape);

    // `reference` is the tier-ladder spelling of `--no-tape`.
    let cmd = parse_args(argv("analyze f.bench --sim-kernel reference")).expect("parse");
    assert!(!cmd.config().sim.tape);

    // `--no-jit` caps the ladder at the fused interpreter, even when
    // jit was requested explicitly.
    let cmd = parse_args(argv("analyze f.bench --sim-kernel jit --no-jit")).expect("parse");
    assert!(cmd.no_jit);
    assert_eq!(cmd.config().sim.kernel, SimKernel::Fused);
    // ...but never touches an explicit interpreter tier.
    let cmd = parse_args(argv("analyze f.bench --sim-kernel tape --no-jit")).expect("parse");
    assert_eq!(cmd.config().sim.kernel, SimKernel::Tape);

    // Without the flags the defaults apply (jit, unless MCPATH_NO_JIT
    // is set in this test environment).
    let cmd = parse_args(argv("analyze f.bench")).expect("parse");
    assert_eq!(cmd.config().sim.kernel, McConfig::default().sim.kernel);

    assert!(parse_args(argv("analyze f.bench --sim-kernel turbo")).is_err());
    assert!(parse_args(argv("analyze f.bench --sim-kernel")).is_err());

    // The kernel tier is verdict-neutral: it must not move the config
    // fingerprint (or the warm cache would go cold on an A/B flag).
    let base = parse_args(argv("analyze f.bench")).expect("parse");
    for alt in ["--sim-kernel fused", "--sim-kernel tape", "--no-jit"] {
        let cmd = parse_args(argv(&format!("analyze f.bench {alt}"))).expect("parse");
        assert_eq!(
            cmd.config().fingerprint(),
            base.config().fingerprint(),
            "{alt} must not change the fingerprint"
        );
    }
}

#[test]
fn unsupported_lane_width_is_a_clean_analyze_error() {
    // 96 parses as a number; `analyze` rejects it (the same check
    // covers MCPATH_SIM_LANES, so the CLI does not pre-validate).
    let dir = std::env::temp_dir().join("mcpath-cli-test-lanes");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let bench_path = dir.join("m27.bench");
    let text = run(&parse_args(argv("gen m27")).expect("parse")).expect("gen");
    std::fs::write(&bench_path, text).expect("write");
    let cmd = parse_args(argv(&format!(
        "analyze {} --sim-lanes 96 --quiet",
        bench_path.display()
    )))
    .expect("parse");
    let err = run(&cmd).unwrap_err();
    assert!(err.contains("sim lanes"), "{err}");
    assert!(err.contains("96"), "{err}");
}

#[test]
fn parses_observability_flags() {
    let cmd = parse_args(argv(
        "analyze foo.bench --metrics --trace-out t.ndjson --progress",
    ))
    .expect("parse");
    assert!(cmd.metrics);
    assert_eq!(cmd.trace_out.as_deref(), Some("t.ndjson"));
    assert!(cmd.progress);
    assert!(parse_args(argv("analyze f.bench --trace-out")).is_err());
}

#[test]
fn metrics_trace_and_stats_round_trip() {
    let dir = std::env::temp_dir().join("mcpath-cli-test3");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let bench_path = dir.join("m27.bench");
    let text = run(&parse_args(argv("gen m27")).expect("parse")).expect("gen");
    std::fs::write(&bench_path, text).expect("write");
    let json = dir.join("report.json");
    let trace = dir.join("trace.ndjson");

    let cmd = parse_args(argv(&format!(
        "analyze {} --metrics --json {} --trace-out {} --quiet",
        bench_path.display(),
        json.display(),
        trace.display()
    )))
    .expect("parse");
    let out = run(&cmd).expect("analyze");
    assert!(out.contains("engine counters:"), "{out}");
    assert!(out.contains("implications"), "{out}");
    assert!(out.contains("per-step resolution"), "{out}");
    assert!(out.contains("throughput"), "{out}");
    assert!(out.contains("sim_words_per_sec"), "{out}");
    // The throughput attribution names the kernel tier that ran (the
    // exact tag is host-dependent: jit-avx2, jit-scalar or fused).
    assert!(out.contains("sim_kernels"), "{out}");

    // `stats` on the NDJSON journal aggregates the per-pair events.
    let cmd = parse_args(argv(&format!("stats {}", trace.display()))).expect("parse");
    let out = run(&cmd).expect("stats journal");
    assert!(out.contains("trace journal:"), "{out}");
    assert!(out.contains("total"), "{out}");

    // `stats` on the saved JSON report prints the same tables.
    let cmd = parse_args(argv(&format!("stats {}", json.display()))).expect("parse");
    let out = run(&cmd).expect("stats report");
    assert!(out.contains("saved report"), "{out}");
    assert!(out.contains("engine counters:"), "{out}");

    // A JSON file that is neither is a clean error.
    let bogus = dir.join("bogus.json");
    std::fs::write(&bogus, "[1, 2, 3]").expect("write");
    let cmd = parse_args(argv(&format!("stats {}", bogus.display()))).expect("parse");
    assert!(run(&cmd).is_err());
}

#[test]
fn parses_resume_compare_and_canonical_flags() {
    let cmd = parse_args(argv(
        "analyze f.bench --resume old.ndjson --canonical --json r.json",
    ))
    .expect("parse");
    assert_eq!(cmd.resume.as_deref(), Some("old.ndjson"));
    assert!(cmd.canonical);

    let cmd = parse_args(argv("stats --compare a.json b.json --threshold 5")).expect("parse");
    assert_eq!(
        cmd.action,
        Action::Compare {
            old: "a.json".into(),
            new: "b.json".into()
        }
    );
    assert!((cmd.threshold - 5.0).abs() < 1e-9);
    assert!(parse_args(argv("stats --compare a.json")).is_err());
    assert!(parse_args(argv("stats x.bench --compare a.json b.json")).is_err());
    assert!(parse_args(argv("stats --compare a.json b.json --threshold abc")).is_err());

    let cmd = parse_args(argv("trace t.ndjson")).expect("parse");
    assert_eq!(cmd.action, Action::Trace("t.ndjson".into()));
    assert_eq!(cmd.format, OutputFormat::Chrome, "trace defaults to chrome");
    assert!(parse_args(argv("trace")).is_err());
    assert!(run(&parse_args(argv("lint f.bench --format chrome")).expect("parse")).is_err());
}

#[test]
fn resume_trace_and_compare_round_trip() {
    let dir = std::env::temp_dir().join("mcpath-cli-ledger");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let bench_path = dir.join("m27.bench");
    let text = run(&parse_args(argv("gen m27")).expect("parse")).expect("gen");
    std::fs::write(&bench_path, text).expect("write");
    let full = dir.join("full.ndjson");
    let report = dir.join("report.json");
    let c1 = dir.join("c1.json");
    let c2 = dir.join("c2.json");

    // Uninterrupted run: full ledger + plain and canonical reports.
    let out = run(&parse_args(argv(&format!(
        "analyze {} --trace-out {} --json {} --quiet",
        bench_path.display(),
        full.display(),
        report.display()
    )))
    .expect("parse"))
    .expect("analyze");
    assert!(!out.contains("resumed:"), "{out}");
    run(&parse_args(argv(&format!(
        "analyze {} --json {} --canonical --quiet",
        bench_path.display(),
        c1.display()
    )))
    .expect("parse"))
    .expect("analyze canonical");

    // `trace` exports the ledger's span tree as Chrome trace JSON.
    let out = run(&parse_args(argv(&format!("trace {}", full.display()))).expect("parse"))
        .expect("trace ledger");
    let doc: mcp_obs::ChromeTrace = serde_json::from_str(&out).expect("chrome JSON");
    assert!(!doc.traceEvents.is_empty());
    assert!(doc
        .traceEvents
        .iter()
        .any(|e| e.name.starts_with("analyze")));
    // ...and a saved report degrades to span totals.
    let out = run(&parse_args(argv(&format!("trace {}", report.display()))).expect("parse"))
        .expect("trace report");
    let doc: mcp_obs::ChromeTrace = serde_json::from_str(&out).expect("chrome JSON");
    assert!(!doc.traceEvents.is_empty());

    // Simulate a mid-run kill: keep the header and half the events.
    let ledger_text = std::fs::read_to_string(&full).expect("read ledger");
    let lines: Vec<&str> = ledger_text.lines().collect();
    let keep = (lines.len() / 2).max(2);
    let truncated = dir.join("killed.ndjson");
    std::fs::write(&truncated, format!("{}\n", lines[..keep].join("\n"))).expect("write");

    // Resume completes the run; the canonical report is byte-identical.
    let out = run(&parse_args(argv(&format!(
        "analyze {} --resume {} --json {} --canonical --quiet",
        bench_path.display(),
        truncated.display(),
        c2.display()
    )))
    .expect("parse"))
    .expect("resume");
    assert!(out.contains("resumed:"), "{out}");
    assert_eq!(
        std::fs::read(&c1).expect("read c1"),
        std::fs::read(&c2).expect("read c2"),
        "resumed canonical report must be byte-identical"
    );

    // Identical artifacts compare clean; a ledger that gained events
    // relative to its baseline is a regression (exit code 1).
    let out = run(&parse_args(argv(&format!(
        "stats --compare {} {}",
        c1.display(),
        c2.display()
    )))
    .expect("parse"))
    .expect("compare identical");
    assert!(out.contains("no counter differences"), "{out}");
    let err = run(&parse_args(argv(&format!(
        "stats --compare {} {}",
        truncated.display(),
        full.display()
    )))
    .expect("parse"))
    .unwrap_err();
    assert!(err.contains("regression"), "{err}");

    // Resuming against a different circuit is a clean mismatch error
    // that names both digests.
    let fig3 = dir.join("fig3.bench");
    std::fs::write(&fig3, bench::to_bench(&mcp_gen::circuits::fig3())).expect("write");
    let err = run(&parse_args(argv(&format!(
        "analyze {} --resume {} --quiet",
        fig3.display(),
        full.display()
    )))
    .expect("parse"))
    .unwrap_err();
    assert!(err.contains("netlist mismatch"), "{err}");
    assert!(err.contains("ledger digest"), "{err}");
}

#[test]
fn span_table_renders_as_an_indented_hierarchy() {
    let mut snap = mcp_obs::MetricsSnapshot::default();
    snap.spans.insert(
        "analyze".to_owned(),
        mcp_obs::SpanStat {
            total: Duration::from_millis(10),
            count: 1,
        },
    );
    snap.spans.insert(
        "analyze/pairs".to_owned(),
        mcp_obs::SpanStat {
            total: Duration::from_millis(8),
            count: 4,
        },
    );
    snap.spans.insert(
        "orphan/child".to_owned(),
        mcp_obs::SpanStat {
            total: Duration::from_millis(1),
            count: 1,
        },
    );
    let out = render_snapshot(&snap);
    assert!(out.contains("\n  analyze "), "{out}");
    assert!(out.contains("\n    pairs"), "indented child:\n{out}");
    assert!(out.contains("mean 2.00ms"), "per-entry mean:\n{out}");
    assert!(out.contains("  orphan/\n"), "ancestor header:\n{out}");
    assert!(out.contains("\n    child"), "{out}");
}

#[test]
fn parses_shard_and_merge_surfaces() {
    // `shard` needs --shard I/N and --trace-out.
    let cmd = parse_args(argv("shard f.bench --shard 2/4 --trace-out s2.ndjson")).expect("parse");
    assert_eq!(cmd.action, Action::Shard("f.bench".into()));
    assert_eq!(cmd.shard, Some((2, 4)));
    assert_eq!(cmd.config().shard, Some(ShardSpec { index: 2, count: 4 }));
    assert!(parse_args(argv("shard f.bench --trace-out s.ndjson")).is_err());
    assert!(parse_args(argv("shard f.bench --shard 0/4")).is_err());
    for bad in ["2", "2/", "/4", "a/b", "1/2/3"] {
        assert!(
            parse_args(argv(&format!(
                "shard f.bench --shard {bad} --trace-out s.ndjson"
            )))
            .is_err(),
            "--shard {bad} must be rejected"
        );
    }

    // `merge` takes the bench plus at least one ledger.
    let cmd = parse_args(argv("merge f.bench a.ndjson b.ndjson")).expect("parse");
    assert_eq!(
        cmd.action,
        Action::Merge {
            path: "f.bench".into(),
            ledgers: vec!["a.ndjson".into(), "b.ndjson".into()],
        }
    );
    assert!(parse_args(argv("merge f.bench")).is_err());

    // `analyze --shards` is the driver; it refuses `--resume`.
    let cmd = parse_args(argv("analyze f.bench --shards 4")).expect("parse");
    assert_eq!(cmd.shards, Some(4));
    assert!(
        cmd.config().shard.is_none(),
        "the driver itself is unsharded"
    );
    assert!(parse_args(argv("analyze f.bench --shards 0")).is_err());
    assert!(parse_args(argv("analyze f.bench --shards abc")).is_err());
    let err = parse_args(argv("analyze f.bench --shards 2 --resume l.ndjson")).unwrap_err();
    assert!(err.to_string().contains("--resume"), "{err}");
}

#[test]
fn shard_children_inherit_the_fingerprint_flags() {
    let cmd = parse_args(argv(
        "analyze f.bench --shards 2 --engine sat --cycles 3 --backtracks 99 --learn \
         --threads 4 --scheduler static --no-sim --sim-lanes 128 --no-tape \
         --sim-kernel fused --no-jit --no-self-pairs --no-lint --no-slice \
         --no-static-classify",
    ))
    .expect("parse");
    let flags = cmd.child_flags();
    let rebuilt = parse_args(
        ["shard".into(), "f.bench".into()]
            .into_iter()
            .chain([
                "--shard".to_owned(),
                "0/2".to_owned(),
                "--trace-out".to_owned(),
                "s.ndjson".to_owned(),
            ])
            .chain(flags),
    )
    .expect("child command parses");
    // The verdict-affecting config must survive the round trip
    // exactly: equal fingerprints are what `merge` enforces.
    assert_eq!(rebuilt.config().fingerprint(), cmd.config().fingerprint());
    // And the neutral scheduling knobs ride along too.
    assert_eq!(rebuilt.threads, cmd.threads);
    assert_eq!(rebuilt.scheduler, cmd.scheduler);
    assert_eq!(rebuilt.sim_kernel, cmd.sim_kernel);
    assert_eq!(rebuilt.no_jit, cmd.no_jit);
    assert!(rebuilt.quiet);
}

#[test]
fn shard_and_merge_round_trip_matches_single_process() {
    let dir = std::env::temp_dir().join("mcpath-cli-shard");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let bench_path = dir.join("m27.bench");
    let text = run(&parse_args(argv("gen m27")).expect("parse")).expect("gen");
    std::fs::write(&bench_path, text).expect("write");

    // Single-process canonical baseline.
    let baseline = dir.join("baseline.json");
    run(&parse_args(argv(&format!(
        "analyze {} --threads 1 --json {} --canonical --quiet",
        bench_path.display(),
        baseline.display()
    )))
    .expect("parse"))
    .expect("baseline analyze");

    // Run the three shards in-process and merge their ledgers.
    let mut ledger_args = String::new();
    for index in 0..3 {
        let ledger = dir.join(format!("shard-{index}.ndjson"));
        let out = run(&parse_args(argv(&format!(
            "shard {} --shard {index}/3 --trace-out {} --quiet",
            bench_path.display(),
            ledger.display()
        )))
        .expect("parse"))
        .expect("shard run");
        assert!(out.contains(&format!("shard {index}/3:")), "{out}");
        let _ = write!(ledger_args, " {}", ledger.display());
    }
    let merged = dir.join("merged.json");
    let out = run(&parse_args(argv(&format!(
        "merge {}{ledger_args} --json {} --canonical --quiet",
        bench_path.display(),
        merged.display()
    )))
    .expect("parse"))
    .expect("merge");
    assert!(out.contains("merged: 3 shard ledgers"), "{out}");
    assert_eq!(
        std::fs::read(&baseline).expect("read baseline"),
        std::fs::read(&merged).expect("read merged"),
        "merged canonical report must be byte-identical"
    );

    // A missing shard is refused with a clean message.
    let err = run(&parse_args(argv(&format!(
        "merge {} {}",
        bench_path.display(),
        dir.join("shard-0.ndjson").display()
    )))
    .expect("parse"))
    .unwrap_err();
    assert!(err.contains("missing shard"), "{err}");
}

#[test]
fn missing_file_is_a_clean_error() {
    let cmd = parse_args(argv("analyze /no/such/file.bench")).expect("parse");
    let err = run(&cmd).unwrap_err();
    assert!(err.contains("cannot read"), "{err}");
}

#[test]
fn help_prints_usage() {
    let out = run(&parse_args(argv("help")).expect("parse")).expect("run");
    assert!(out.contains("USAGE"));
}

#[test]
fn parses_cache_and_eco_flags() {
    let cmd = parse_args(argv("analyze f.bench --cache-dir /tmp/c")).expect("parse");
    assert_eq!(cmd.cache_dir.as_deref(), Some("/tmp/c"));
    assert_eq!(
        cmd.config().cache_dir,
        Some(std::path::PathBuf::from("/tmp/c"))
    );

    let cmd =
        parse_args(argv("analyze f.bench --eco old.bench --cache-dir /tmp/c")).expect("parse");
    assert_eq!(cmd.eco.as_deref(), Some("old.bench"));

    // `--eco` belongs to `analyze`, needs a cache, and refuses the other
    // verdict-replay modes (each owns the restored-pair journal).
    assert!(parse_args(argv("hazard f.bench --eco old.bench --cache-dir /tmp/c")).is_err());
    if std::env::var_os("MCPATH_CACHE_DIR").is_none() {
        assert!(parse_args(argv("analyze f.bench --eco old.bench")).is_err());
    }
    for bad in ["--shards 2", "--resume l.ndjson", "--shard 0/2"] {
        assert!(
            parse_args(argv(&format!(
                "analyze f.bench --eco old.bench --cache-dir /tmp/c {bad}"
            )))
            .is_err(),
            "--eco with {bad} must be rejected"
        );
    }

    // `serve` requires the resident store.
    let cmd = parse_args(argv("serve /tmp/s.sock --cache-dir /tmp/c")).expect("parse");
    assert_eq!(cmd.action, Action::Serve("/tmp/s.sock".into()));
    assert!(parse_args(argv("serve /tmp/s.sock")).is_err());
}

#[test]
fn warm_cache_rerun_is_byte_identical_with_zero_engine_events() {
    let dir = std::env::temp_dir().join("mcpath-cli-cache");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let bench_path = dir.join("m27.bench");
    let text = run(&parse_args(argv("gen m27")).expect("parse")).expect("gen");
    std::fs::write(&bench_path, text).expect("write");
    let cache = dir.join("cache");
    let cold = dir.join("cold.json");
    let warm = dir.join("warm.json");
    let journal = dir.join("warm.ndjson");

    let out = run(&parse_args(argv(&format!(
        "analyze {} --cache-dir {} --json {} --canonical --quiet",
        bench_path.display(),
        cache.display(),
        cold.display()
    )))
    .expect("parse"))
    .expect("cold run");
    assert!(out.contains("cache: miss"), "{out}");

    let out = run(&parse_args(argv(&format!(
        "analyze {} --cache-dir {} --json {} --canonical --trace-out {} --quiet",
        bench_path.display(),
        cache.display(),
        warm.display(),
        journal.display()
    )))
    .expect("parse"))
    .expect("warm run");
    assert!(out.contains("cache: hit"), "{out}");
    assert_eq!(
        std::fs::read(&cold).expect("read cold"),
        std::fs::read(&warm).expect("read warm"),
        "warm canonical report must be byte-identical"
    );

    // The warm journal shows zero engine-tagged events: every verdict
    // was spliced from the verdicts artifact.
    let events = mcp_obs::read_journal_file(&journal).expect("read journal");
    assert!(
        events.iter().all(|e| e.engine.is_none()),
        "warm rerun must perform zero engine verifications"
    );
    assert!(events.iter().any(|e| e.cached), "spliced events are tagged");
}

#[test]
fn eco_cli_run_matches_a_cold_full_run() {
    let dir = std::env::temp_dir().join("mcpath-cli-eco");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let old_path = dir.join("old.bench");
    let old_text = run(&parse_args(argv("gen m27")).expect("parse")).expect("gen");
    std::fs::write(&old_path, &old_text).expect("write");
    // One-gate edit: the first AND becomes an OR.
    let new_text = old_text.replacen("= AND(", "= OR(", 1);
    assert_ne!(old_text, new_text, "the suite circuit must contain an AND");
    let new_path = dir.join("new.bench");
    std::fs::write(&new_path, new_text).expect("write");

    let cache = dir.join("cache");
    let eco_json = dir.join("eco.json");
    let cold_json = dir.join("cold.json");

    // Seed the store with the baseline's artifacts.
    run(&parse_args(argv(&format!(
        "analyze {} --cache-dir {} --quiet",
        old_path.display(),
        cache.display()
    )))
    .expect("parse"))
    .expect("baseline run");

    let out = run(&parse_args(argv(&format!(
        "analyze {} --eco {} --cache-dir {} --json {} --canonical --quiet",
        new_path.display(),
        old_path.display(),
        cache.display(),
        eco_json.display()
    )))
    .expect("parse"))
    .expect("eco run");
    assert!(out.contains("eco: "), "{out}");
    assert!(!out.contains("ran the full analysis"), "{out}");

    // Cold full run of the new netlist, no cache involved.
    run(&parse_args(argv(&format!(
        "analyze {} --json {} --canonical --quiet",
        new_path.display(),
        cold_json.display()
    )))
    .expect("parse"))
    .expect("cold run");
    assert_eq!(
        std::fs::read(&eco_json).expect("read eco"),
        std::fs::read(&cold_json).expect("read cold"),
        "ECO report must be byte-identical to the cold full run"
    );
}

#[test]
fn cache_stats_and_gc_subcommands_manage_the_store() {
    let dir = std::env::temp_dir().join("mcpath-cli-cache-gc");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let bench_path = dir.join("m27.bench");
    let text = run(&parse_args(argv("gen m27")).expect("parse")).expect("gen");
    std::fs::write(&bench_path, text).expect("write");
    let cache = dir.join("cache");

    // Parse-level contracts first.
    assert!(parse_args(argv("cache")).is_err(), "needs an operation");
    assert!(
        parse_args(argv("cache gc --cache-dir /tmp/c")).is_err(),
        "gc needs --max-bytes"
    );
    assert!(parse_args(argv("cache gc --cache-dir /tmp/c --max-bytes abc")).is_err());
    if std::env::var_os("MCPATH_CACHE_DIR").is_none() {
        assert!(parse_args(argv("cache stats")).is_err(), "needs a dir");
    }

    // Fill the store, then inspect it.
    run(&parse_args(argv(&format!(
        "analyze {} --cache-dir {} --quiet",
        bench_path.display(),
        cache.display()
    )))
    .expect("parse"))
    .expect("seed the store");
    let out = run(&parse_args(argv(&format!(
        "cache stats --cache-dir {}",
        cache.display()
    )))
    .expect("parse"))
    .expect("stats");
    assert!(out.contains("entries:"), "{out}");
    assert!(out.contains("verdicts"), "{out}");
    assert!(out.contains("locked by: nobody"), "{out}");

    // A generous budget evicts nothing; a zero budget empties the store.
    let out = run(&parse_args(argv(&format!(
        "cache gc --cache-dir {} --max-bytes 100000000",
        cache.display()
    )))
    .expect("parse"))
    .expect("gc noop");
    assert!(out.contains("evicted 0 file(s)"), "{out}");
    let out = run(&parse_args(argv(&format!(
        "cache gc --cache-dir {} --max-bytes 0",
        cache.display()
    )))
    .expect("parse"))
    .expect("gc all");
    assert!(out.contains("kept 0 entries"), "{out}");

    // The next analyze is a cold miss again — eviction is safe, never
    // corrupting (missing entries are plain misses).
    let out = run(&parse_args(argv(&format!(
        "analyze {} --cache-dir {} --quiet",
        bench_path.display(),
        cache.display()
    )))
    .expect("parse"))
    .expect("re-seed");
    assert!(out.contains("cache: miss"), "{out}");

    // A live lock holder blocks eviction with a typed refusal.
    let store = mcp_core::CasStore::open(&cache).expect("open");
    let lock = mcp_core::CasLock::acquire(&store).expect("lock");
    let err = run(&parse_args(argv(&format!(
        "cache gc --cache-dir {} --max-bytes 0",
        cache.display()
    )))
    .expect("parse"))
    .unwrap_err();
    assert!(err.contains("locked by live process"), "{err}");
    drop(lock);
}

#[test]
fn serve_answers_ndjson_requests_over_the_socket() {
    use std::io::{BufRead, BufReader, Write as _};

    let dir = std::env::temp_dir().join("mcpath-cli-serve");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let bench_path = dir.join("m27.bench");
    let text = run(&parse_args(argv("gen m27")).expect("parse")).expect("gen");
    std::fs::write(&bench_path, text).expect("write");
    let socket = dir.join("mcpath.sock");
    let cache = dir.join("cache");

    let cmd = parse_args(argv(&format!(
        "serve {} --cache-dir {} --quiet",
        socket.display(),
        cache.display()
    )))
    .expect("parse");
    let server = std::thread::spawn(move || run(&cmd));

    // Wait for the socket to appear.
    let mut stream = None;
    for _ in 0..200 {
        match std::os::unix::net::UnixStream::connect(&socket) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
        }
    }
    let mut stream = stream.expect("server came up");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut send = |req: String| -> String {
        stream.write_all(req.as_bytes()).expect("send");
        stream.write_all(b"\n").expect("send newline");
        let mut line = String::new();
        reader.read_line(&mut line).expect("response");
        line
    };

    // First request is a cold miss, the repeat is a warm hit; both carry
    // the canonical report inline.
    let r1 = send(format!(
        "{{\"op\":\"analyze\",\"path\":\"{}\"}}",
        bench_path.display()
    ));
    assert!(r1.contains("\"ok\":true"), "{r1}");
    assert!(r1.contains("\"cache_hit\":false"), "{r1}");
    assert!(r1.contains("m27.bench"), "{r1}");
    assert!(r1.contains("\"report\":{"), "{r1}");
    let r2 = send(format!(
        "{{\"op\":\"analyze\",\"path\":\"{}\"}}",
        bench_path.display()
    ));
    assert!(r2.contains("\"cache_hit\":true"), "{r2}");

    // Malformed requests are per-line errors, not connection drops.
    let r3 = send("{\"op\":\"analyze\"}".to_owned());
    assert!(r3.contains("\"ok\":false"), "{r3}");
    let r4 = send("not json".to_owned());
    assert!(r4.contains("\"ok\":false"), "{r4}");

    let r5 = send("{\"op\":\"shutdown\"}".to_owned());
    assert!(r5.contains("\"ok\":true"), "{r5}");
    let out = server.join().expect("join").expect("serve ok");
    assert!(out.contains("served 5 request(s)"), "{out}");
}
