//! The `cache` subcommand: maintenance of the `--cache-dir` artifact
//! store without touching any netlist.
//!
//! * `cache stats` — per-stage entry counts and byte totals, plus any
//!   recorded lock holder and non-entry disk usage (tmp debris).
//! * `cache gc --max-bytes N` — evict least-recently-touched entries
//!   until the store fits the budget. Refuses (exit error) while a live
//!   process — a running `mcpath serve` — holds the store's lock.

use super::{CacheOp, Command};
use mcp_core::CasStore;

pub(crate) fn cache(cmd: &Command, op: &CacheOp, out: &mut String) -> Result<(), String> {
    let dir = cmd
        .config()
        .cache_dir
        .ok_or_else(|| "`cache` needs --cache-dir <dir> (or MCPATH_CACHE_DIR)".to_owned())?;
    let store = CasStore::open(&dir).map_err(|e| e.to_string())?;
    match op {
        CacheOp::Stats => {
            let stats = store.stats().map_err(|e| e.to_string())?;
            out.push_str(&format!("cache {}\n", store.root().display()));
            out.push_str(&format!(
                "  entries: {} ({} bytes)\n",
                stats.entries, stats.entry_bytes
            ));
            for s in &stats.stages {
                out.push_str(&format!(
                    "    {:<14} {:>6} entries  {:>10} bytes\n",
                    s.stage, s.entries, s.bytes
                ));
            }
            if stats.other_bytes > 0 {
                out.push_str(&format!(
                    "  other files: {} bytes (lock/tmp/foreign)\n",
                    stats.other_bytes
                ));
            }
            match stats.locked_by {
                Some(pid) => out.push_str(&format!("  locked by: pid {pid}\n")),
                None => out.push_str("  locked by: nobody\n"),
            }
        }
        CacheOp::Gc { max_bytes } => {
            let outcome = store.gc(*max_bytes).map_err(|e| e.to_string())?;
            out.push_str(&format!(
                "cache gc {}: evicted {} file(s) ({} bytes), kept {} entries ({} bytes <= budget {})\n",
                store.root().display(),
                outcome.evicted,
                outcome.freed_bytes,
                outcome.kept,
                outcome.kept_bytes,
                max_bytes
            ));
        }
    }
    Ok(())
}
