//! Command-line front end logic (shared by the `mcpath` binary and its
//! tests).
//!
//! Subcommands (one module per group under `src/cli/`):
//!
//! * `analyze <file.bench>` — run the multi-cycle FF-pair analysis and
//!   print the verdict list plus per-step statistics; `--cache-dir`
//!   persists the staged artifacts so a warm rerun answers from cache,
//!   and `--eco <old.bench>` re-verifies only the sink groups touched by
//!   the edit, splicing cached verdicts for the rest;
//! * `hazard <file.bench>` — analyze, then validate the multi-cycle pairs
//!   against static hazards with both criteria;
//! * `kcycle <file.bench> --max-k <K>` — sweep the cycle budget and report
//!   each pair's maximal verified budget;
//! * `stats <file>` — for a `.bench` file, parse and print structural
//!   statistics; for a saved JSON report or an NDJSON run ledger,
//!   pretty-print the observability data as a Table-2-style per-step
//!   table;
//! * `stats --compare <old> <new> [--threshold <pct>]` — diff the
//!   deterministic counters of two artifacts (reports, ledgers, metrics
//!   snapshots or BENCH tables) and exit non-zero on regressions;
//! * `trace <ledger.ndjson|report.json>` — export the captured span tree
//!   as Chrome trace-event JSON (Perfetto / `chrome://tracing`);
//! * `shard <file.bench> --shard <I/N> --trace-out <ledger>` — verify one
//!   shard of the deterministic pair partition and journal its verdicts
//!   (the ledger *is* the shard's output; `--resume` restarts a killed
//!   shard from its own journal);
//! * `merge <file.bench> <shard1.ndjson> ...` — combine the per-shard
//!   ledgers of one run into the canonical report, refusing missing,
//!   duplicate, foreign or incomplete shards;
//! * `gen <suite-name>` — emit a synthetic suite circuit as `.bench` text
//!   (so external tools can consume the benchmark suite);
//! * `serve <socket>` — answer NDJSON analyze requests over a Unix
//!   socket, keeping the artifact store resident between requests;
//! * `lint <file.bench> [--format text|json]` — run the full `mcp-lint`
//!   rule set (parsing permissively, so corrupt netlists are diagnosed
//!   rather than rejected) and exit non-zero on error-level findings;
//!   `--deny`/`--allow` escalate or disable individual rules, and
//!   `--max-diags` caps the rendered finding list.
//!
//! Options: `--engine implication|sat|bdd`, `--cycles K`, `--backtracks N`,
//! `--learn`, `--threads N`, `--scheduler steal|static`, `--no-sim`,
//! `--sim-lanes 64|128|256|512`, `--no-tape`, `--no-self-pairs`,
//! `--no-lint`, `--no-slice`, `--no-static-classify`, `--deny <rule>`,
//! `--allow <rule>`, `--max-diags <n>`, `--json <path>`, `--canonical`,
//! `--cache-dir <dir>`, `--eco <old.bench>`, `--resume <ledger>`,
//! `--shard <I/N>`, `--shards <N>`, `--format text|json|chrome`,
//! `--metrics`, `--trace-out <path>`, `--progress`, `--quiet`,
//! `--compare <old> <new>`, `--threshold <pct>`.

mod analyze;
mod cache;
mod glitch;
mod misc;
mod render;
mod serve;
#[cfg(test)]
mod tests;

use mcp_core::{Engine, HazardCheck, McConfig, Scheduler, ShardSpec};
use mcp_netlist::{bench, Netlist};
use mcp_obs::{FileSink, ObsCtx};
use mcp_sim::SimKernel;
use std::time::Duration;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Command {
    /// The subcommand and its positional payload.
    pub action: Action,
    /// Engine selection.
    pub engine: Engine,
    /// Cycle budget.
    pub cycles: u32,
    /// ATPG backtrack limit.
    pub backtracks: u64,
    /// Enable static learning.
    pub learn: bool,
    /// Worker threads.
    pub threads: usize,
    /// Pair-loop scheduling policy.
    pub scheduler: Scheduler,
    /// Disable the random-simulation prefilter.
    pub no_sim: bool,
    /// Simulation lane width of the prefilter's compiled kernel
    /// (64, 128, 256 or 512); `None` keeps the default (256, or the
    /// `MCPATH_SIM_LANES` env var).
    pub sim_lanes: Option<u32>,
    /// Run the prefilter on the graph-walking reference simulator
    /// instead of the compiled tape kernel (A/B escape hatch; the
    /// outcome is byte-identical).
    pub no_tape: bool,
    /// Which prefilter kernel tier to run (`--sim-kernel
    /// jit|fused|tape|reference`); `None` keeps the default ladder
    /// (jit, or fused under `MCPATH_NO_JIT`). Verdict-neutral.
    pub sim_kernel: Option<SimKernel>,
    /// Never emit native code: downgrade the jit tier to the fused
    /// interpreter (`--no-jit`; same effect as `MCPATH_NO_JIT`).
    pub no_jit: bool,
    /// Exclude self pairs.
    pub no_self_pairs: bool,
    /// Skip the pre-analysis structural lint gate.
    pub no_lint: bool,
    /// Run the engines on the whole-circuit expansion instead of per
    /// sink-group cone slices (A/B escape hatch; verdicts are identical).
    pub no_slice: bool,
    /// Skip the dataflow pre-pass that statically classifies pairs whose
    /// sink FF is provably frozen (A/B escape hatch; the canonical report
    /// is byte-identical either way).
    pub no_static_classify: bool,
    /// Lint rule ids escalated to error severity (`--deny`, repeatable).
    pub deny: Vec<String>,
    /// Lint rule ids disabled entirely (`--allow`, repeatable).
    pub allow: Vec<String>,
    /// Cap on the findings the `lint` subcommand renders (`--max-diags`).
    pub max_diags: Option<usize>,
    /// Output format of the `lint` and `trace` subcommands.
    pub format: OutputFormat,
    /// Optional JSON report path.
    pub json: Option<String>,
    /// Write the `--json` report in canonical form (wall-clock and
    /// machine-dependent fields projected out) for byte comparison.
    pub canonical: bool,
    /// Persist the staged pipeline artifacts under this directory
    /// (`--cache-dir`; overrides the `MCPATH_CACHE_DIR` env var).
    pub cache_dir: Option<String>,
    /// Baseline netlist for ECO-incremental re-analysis
    /// (`analyze --eco <old.bench>`; needs `--cache-dir`).
    pub eco: Option<String>,
    /// Resume `analyze` from a prior run's NDJSON ledger.
    pub resume: Option<String>,
    /// Which slice of the deterministic pair partition this process
    /// verifies (`--shard I/N`; the `shard` subcommand requires it).
    pub shard: Option<(u64, u64)>,
    /// Driver mode for `analyze`: fork `--shards N` child `shard`
    /// processes over the pair partition and merge their ledgers.
    pub shards: Option<u64>,
    /// Print engine counters and span timings after the analysis.
    pub metrics: bool,
    /// Optional NDJSON run-ledger path.
    pub trace_out: Option<String>,
    /// Report pair-loop progress on stderr while analyzing.
    pub progress: bool,
    /// Regression threshold (percent) for `stats --compare`.
    pub threshold: f64,
    /// Suppress the pair listing.
    pub quiet: bool,
}

/// Output format of the `lint` and `trace` subcommands.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum OutputFormat {
    /// One line per finding plus a summary line (`lint` only).
    #[default]
    Text,
    /// Machine-readable JSON ([`mcp_lint::Diagnostics`] for `lint`).
    Json,
    /// Chrome trace-event JSON (`trace` only).
    Chrome,
}

/// What to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Analyze a `.bench` file.
    Analyze(String),
    /// Analyze + hazard-check a `.bench` file.
    Hazard(String),
    /// Analyze + report the cross-pair dependencies of the
    /// sensitization-validated multi-cycle pairs.
    Deps(String),
    /// Cycle-budget sweep on a `.bench` file up to the given `k`.
    Kcycle(String, u32),
    /// Verify one shard of a `.bench` file's pair partition, journaling
    /// the verdicts to `--trace-out`.
    Shard(String),
    /// Merge per-shard NDJSON ledgers into the canonical report.
    Merge {
        /// The `.bench` file the shards analyzed.
        path: String,
        /// One ledger path per shard (any order).
        ledgers: Vec<String>,
    },
    /// Print structural statistics of a `.bench` file.
    Stats(String),
    /// Diff the deterministic counters of two artifacts.
    Compare {
        /// Baseline artifact path.
        old: String,
        /// Candidate artifact path.
        new: String,
    },
    /// Export an artifact's span tree as Chrome trace-event JSON.
    Trace(String),
    /// Emit a synthetic suite circuit as `.bench`.
    Gen(String),
    /// Simplify a `.bench` file (constant sweep, CSE, dead logic) and
    /// emit the result.
    Sweep(String),
    /// Render a `.bench` file as Graphviz DOT.
    Dot(String),
    /// Run the static-analysis rules on a `.bench` file.
    Lint(String),
    /// Analyze and emit SDC `set_multicycle_path` constraints.
    Sdc {
        /// The `.bench` file.
        path: String,
        /// Constrain only hazard-robust pairs (using this criterion).
        robust: Option<HazardCheck>,
    },
    /// Hunt for a dynamic glitch on a specific pair and dump a VCD.
    Glitch {
        /// The `.bench` file.
        path: String,
        /// Source and sink FF names.
        src: String,
        /// Sink FF name.
        dst: String,
        /// VCD output path.
        out: String,
    },
    /// Answer NDJSON analyze requests over a Unix socket.
    Serve(String),
    /// Inspect or shrink the `--cache-dir` artifact store.
    Cache(CacheOp),
    /// Print usage.
    Help,
}

/// What the `cache` subcommand does to the artifact store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOp {
    /// Report per-stage entry counts and byte totals.
    Stats,
    /// Evict least-recently-touched entries down to a byte budget.
    Gc {
        /// The byte budget the store must fit after eviction.
        max_bytes: u64,
    },
}

/// Error from command-line parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCliError(pub String);

impl std::fmt::Display for ParseCliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseCliError {}

/// Usage text.
pub const USAGE: &str = "\
mcpath — implication-based multi-cycle FF-pair detection (DAC 2002)

USAGE:
  mcpath analyze <file.bench> [options]
  mcpath hazard  <file.bench> [options]
  mcpath deps    <file.bench> [options]
  mcpath kcycle  <file.bench> --max-k <K> [options]
  mcpath shard   <file.bench> --shard <I/N> --trace-out <ledger.ndjson>
                 [--resume <ledger.ndjson>] [options]
  mcpath merge   <file.bench> <shard0.ndjson> [<shard1.ndjson> ...] [options]
  mcpath stats   <file.bench|report.json|ledger.ndjson>
  mcpath stats   --compare <old> <new> [--threshold <pct>]
  mcpath trace   <ledger.ndjson|report.json> [--format chrome]
  mcpath gen     <m27|m298|...|m38584>
  mcpath dot     <file.bench>
  mcpath sweep   <file.bench>
  mcpath sdc     <file.bench> [--robust sens|cosens] [options]
  mcpath glitch  <file.bench> <srcFF> <dstFF> <out.vcd>
  mcpath serve   <socket> --cache-dir <dir> [options]
  mcpath cache   stats --cache-dir <dir>
  mcpath cache   gc --cache-dir <dir> --max-bytes <N>
  mcpath lint    <file.bench> [--format text|json] [--deny <rule>]
                 [--allow <rule>] [--max-diags <n>]

OPTIONS:
  --engine implication|sat|bdd   decision engine (default: implication)
  --cycles <K>                   cycle budget (default: 2)
  --backtracks <N>               ATPG backtrack limit (default: 50)
  --learn                        enable SOCRATES-style static learning
  --threads <N>                  parallel pair workers (default: 1)
  --scheduler steal|static       pair scheduling policy (default: steal)
  --no-sim                       skip the random-simulation prefilter
  --sim-lanes 64|128|256|512     prefilter patterns per pass (default: 256);
                                 the outcome is identical at every width
  --no-tape                      prefilter on the graph-walking reference
                                 simulator instead of the compiled kernel
  --sim-kernel jit|fused|tape|reference
                                 prefilter kernel tier (default: jit, with
                                 automatic fallback on non-x86-64 hosts);
                                 the outcome is identical in every tier
  --no-jit                       never emit native code: run the jit tier
                                 as the fused interpreter (MCPATH_NO_JIT)
  --max-bytes <N>                byte budget for `cache gc` (entries are
                                 evicted least-recently-touched first)
  --no-self-pairs                exclude (FFi, FFi) pairs ([9]'s convention)
  --no-lint                      analyze even if structural lints fail
  --no-slice                     engines run on the whole-circuit expansion
                                 instead of per-sink-group cone slices
  --no-static-classify           skip the dataflow pre-pass that resolves
                                 pairs with provably frozen sink FFs
  --deny <rule>                  escalate a lint rule to error severity
                                 (repeatable; `lint` only)
  --allow <rule>                 disable a lint rule entirely
                                 (repeatable; `lint` only)
  --max-diags <n>                cap the findings `lint` renders
  --format text|json|chrome      lint/trace output format
  --json <path>                  dump the report as JSON
  --canonical                    write the --json report in canonical form
                                 (timings zeroed; byte-comparable)
  --cache-dir <dir>              persist the staged pipeline artifacts so a
                                 warm rerun answers from cache (also via the
                                 MCPATH_CACHE_DIR env var)
  --eco <old.bench>              re-verify only the sink groups touched by
                                 the edit old -> new, splicing the cached
                                 verdicts of the rest (needs --cache-dir)
  --resume <ledger.ndjson>       restart analyze from a prior run's ledger,
                                 re-verifying only the unresolved pairs
  --shard <I/N>                  verify shard I of the N-way deterministic
                                 pair partition (the `shard` subcommand)
  --shards <N>                   analyze by forking N `shard` child
                                 processes and merging their ledgers
  --metrics                      print engine counters and span timings
  --trace-out <path>             write the NDJSON run ledger (header, one
                                 record per pair, timestamped span tree)
  --progress                     report pair-loop progress on stderr
  --compare <old> <new>          diff two artifacts' deterministic counters
  --threshold <pct>              counter growth tolerated by --compare
                                 before it counts as a regression (default 0)
  --quiet                        omit the per-pair listing
";

/// Parses raw arguments (without the program name).
///
/// # Errors
///
/// Returns [`ParseCliError`] with a human-readable message on malformed
/// input.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Command, ParseCliError> {
    let mut args = args.into_iter().peekable();
    let sub = args
        .next()
        .ok_or_else(|| ParseCliError("missing subcommand (try `mcpath help`)".into()))?;

    let mut positional: Vec<String> = Vec::new();
    let mut engine = Engine::Implication;
    let mut cycles = 2u32;
    let mut backtracks = 50u64;
    let mut learn = false;
    let mut threads = 1usize;
    let mut scheduler = Scheduler::default();
    let mut no_sim = false;
    let mut sim_lanes: Option<u32> = None;
    let mut no_tape = false;
    let mut sim_kernel: Option<SimKernel> = None;
    let mut no_jit = false;
    let mut max_bytes: Option<u64> = None;
    let mut no_self_pairs = false;
    let mut no_lint = false;
    let mut no_slice = false;
    let mut no_static_classify = false;
    let mut deny: Vec<String> = Vec::new();
    let mut allow: Vec<String> = Vec::new();
    let mut max_diags: Option<usize> = None;
    let mut format: Option<OutputFormat> = None;
    let mut json = None;
    let mut canonical = false;
    let mut cache_dir = None;
    let mut eco = None;
    let mut resume = None;
    let mut shard: Option<(u64, u64)> = None;
    let mut shards: Option<u64> = None;
    let mut metrics = false;
    let mut trace_out = None;
    let mut progress = false;
    let mut threshold = 0.0f64;
    let mut compare: Option<(String, String)> = None;
    let mut quiet = false;
    let mut max_k: Option<u32> = None;
    let mut robust_check: Option<HazardCheck> = None;

    let take_value = |args: &mut std::iter::Peekable<I::IntoIter>,
                      flag: &str|
     -> Result<String, ParseCliError> {
        args.next()
            .ok_or_else(|| ParseCliError(format!("`{flag}` needs a value")))
    };

    while let Some(a) = args.next() {
        match a.as_str() {
            "--engine" => {
                engine = match take_value(&mut args, "--engine")?.as_str() {
                    "implication" => Engine::Implication,
                    "sat" => Engine::Sat,
                    "bdd" => Engine::Bdd {
                        node_limit: 1 << 22,
                        reachability: false,
                    },
                    other => {
                        return Err(ParseCliError(format!("unknown engine `{other}`")));
                    }
                }
            }
            "--cycles" => {
                cycles = take_value(&mut args, "--cycles")?
                    .parse()
                    .map_err(|e| ParseCliError(format!("bad --cycles: {e}")))?;
            }
            "--backtracks" => {
                backtracks = take_value(&mut args, "--backtracks")?
                    .parse()
                    .map_err(|e| ParseCliError(format!("bad --backtracks: {e}")))?;
            }
            "--max-k" => {
                max_k = Some(
                    take_value(&mut args, "--max-k")?
                        .parse()
                        .map_err(|e| ParseCliError(format!("bad --max-k: {e}")))?,
                );
            }
            "--threads" => {
                threads = take_value(&mut args, "--threads")?
                    .parse()
                    .map_err(|e| ParseCliError(format!("bad --threads: {e}")))?;
            }
            "--scheduler" => {
                scheduler = match take_value(&mut args, "--scheduler")?.as_str() {
                    "steal" | "work-steal" => Scheduler::WorkSteal,
                    "static" => Scheduler::Static,
                    other => {
                        return Err(ParseCliError(format!("unknown scheduler `{other}`")));
                    }
                }
            }
            "--json" => json = Some(take_value(&mut args, "--json")?),
            "--format" => {
                format = Some(match take_value(&mut args, "--format")?.as_str() {
                    "text" => OutputFormat::Text,
                    "json" => OutputFormat::Json,
                    "chrome" => OutputFormat::Chrome,
                    other => {
                        return Err(ParseCliError(format!("unknown format `{other}`")));
                    }
                })
            }
            "--trace-out" => trace_out = Some(take_value(&mut args, "--trace-out")?),
            "--cache-dir" => cache_dir = Some(take_value(&mut args, "--cache-dir")?),
            "--eco" => eco = Some(take_value(&mut args, "--eco")?),
            "--resume" => resume = Some(take_value(&mut args, "--resume")?),
            "--shard" => {
                let v = take_value(&mut args, "--shard")?;
                let parsed = v
                    .split_once('/')
                    .and_then(|(i, n)| Some((i.parse::<u64>().ok()?, n.parse::<u64>().ok()?)));
                shard = Some(parsed.ok_or_else(|| {
                    ParseCliError(format!("bad --shard `{v}` (expected I/N, e.g. 0/4)"))
                })?);
            }
            "--shards" => {
                shards = Some(
                    take_value(&mut args, "--shards")?
                        .parse()
                        .map_err(|e| ParseCliError(format!("bad --shards: {e}")))?,
                );
            }
            "--compare" => {
                let old = take_value(&mut args, "--compare")?;
                let new = args
                    .next()
                    .ok_or_else(|| ParseCliError("`--compare` needs two artifact paths".into()))?;
                compare = Some((old, new));
            }
            "--threshold" => {
                threshold = take_value(&mut args, "--threshold")?
                    .parse()
                    .map_err(|e| ParseCliError(format!("bad --threshold: {e}")))?;
            }
            "--robust" => {
                robust_check = Some(match take_value(&mut args, "--robust")?.as_str() {
                    "sensitization" | "sens" => HazardCheck::Sensitization,
                    "co-sensitization" | "cosens" => HazardCheck::CoSensitization,
                    other => {
                        return Err(ParseCliError(format!("unknown criterion `{other}`")));
                    }
                })
            }
            "--sim-lanes" => {
                sim_lanes = Some(
                    take_value(&mut args, "--sim-lanes")?
                        .parse()
                        .map_err(|e| ParseCliError(format!("bad --sim-lanes: {e}")))?,
                );
            }
            "--sim-kernel" => {
                let v = take_value(&mut args, "--sim-kernel")?;
                sim_kernel = Some(SimKernel::parse(&v).ok_or_else(|| {
                    ParseCliError(format!(
                        "unknown kernel `{v}` (expected jit|fused|tape|reference)"
                    ))
                })?);
            }
            "--max-bytes" => {
                max_bytes = Some(
                    take_value(&mut args, "--max-bytes")?
                        .parse()
                        .map_err(|e| ParseCliError(format!("bad --max-bytes: {e}")))?,
                );
            }
            "--learn" => learn = true,
            "--canonical" => canonical = true,
            "--metrics" => metrics = true,
            "--progress" => progress = true,
            "--no-sim" => no_sim = true,
            "--no-tape" => no_tape = true,
            "--no-jit" => no_jit = true,
            "--no-self-pairs" => no_self_pairs = true,
            "--no-lint" => no_lint = true,
            "--no-slice" => no_slice = true,
            "--no-static-classify" => no_static_classify = true,
            "--deny" => deny.push(take_value(&mut args, "--deny")?),
            "--allow" => allow.push(take_value(&mut args, "--allow")?),
            "--max-diags" => {
                max_diags = Some(
                    take_value(&mut args, "--max-diags")?
                        .parse()
                        .map_err(|e| ParseCliError(format!("bad --max-diags: {e}")))?,
                );
            }
            "--quiet" => quiet = true,
            other if other.starts_with("--") => {
                return Err(ParseCliError(format!("unknown option `{other}`")));
            }
            _ => positional.push(a),
        }
    }

    let one_positional = |what: &str| -> Result<String, ParseCliError> {
        match positional.as_slice() {
            [p] => Ok(p.clone()),
            [] => Err(ParseCliError(format!("`{sub}` needs {what}"))),
            _ => Err(ParseCliError(format!("`{sub}` takes exactly one {what}"))),
        }
    };

    let action = match sub.as_str() {
        "analyze" => Action::Analyze(one_positional("a .bench file")?),
        "hazard" => Action::Hazard(one_positional("a .bench file")?),
        "deps" => Action::Deps(one_positional("a .bench file")?),
        "kcycle" => Action::Kcycle(
            one_positional("a .bench file")?,
            max_k.ok_or_else(|| ParseCliError("`kcycle` needs --max-k <K>".into()))?,
        ),
        "shard" => {
            if shard.is_none() {
                return Err(ParseCliError(
                    "`shard` needs --shard <I/N> (e.g. --shard 0/4)".into(),
                ));
            }
            if trace_out.is_none() {
                return Err(ParseCliError(
                    "`shard` needs --trace-out <ledger.ndjson>: the journal is the \
                     shard's output (`merge` consumes it)"
                        .into(),
                ));
            }
            Action::Shard(one_positional("a .bench file")?)
        }
        "merge" => match positional.as_slice() {
            [path, rest @ ..] if !rest.is_empty() => Action::Merge {
                path: path.clone(),
                ledgers: rest.to_vec(),
            },
            _ => {
                return Err(ParseCliError(
                    "`merge` needs: <file.bench> <shard0.ndjson> [<shard1.ndjson> ...]".into(),
                ))
            }
        },
        "stats" => match &compare {
            Some((old, new)) => {
                if !positional.is_empty() {
                    return Err(ParseCliError(
                        "`stats --compare` takes no positional file".into(),
                    ));
                }
                Action::Compare {
                    old: old.clone(),
                    new: new.clone(),
                }
            }
            None => Action::Stats(one_positional("a .bench file")?),
        },
        "trace" => Action::Trace(one_positional("a ledger or report file")?),
        "gen" => Action::Gen(one_positional("a suite circuit name")?),
        "sweep" => Action::Sweep(one_positional("a .bench file")?),
        "dot" => Action::Dot(one_positional("a .bench file")?),
        "lint" => Action::Lint(one_positional("a .bench file")?),
        "sdc" => Action::Sdc {
            path: one_positional("a .bench file")?,
            robust: robust_check,
        },
        "glitch" => match positional.as_slice() {
            [path, src, dst, out] => Action::Glitch {
                path: path.clone(),
                src: src.clone(),
                dst: dst.clone(),
                out: out.clone(),
            },
            _ => {
                return Err(ParseCliError(
                    "`glitch` needs: <file.bench> <srcFF> <dstFF> <out.vcd>".into(),
                ))
            }
        },
        "serve" => {
            if cache_dir.is_none() {
                return Err(ParseCliError(
                    "`serve` needs --cache-dir <dir>: the resident artifact store \
                     is what makes repeat requests warm"
                        .into(),
                ));
            }
            Action::Serve(one_positional("a socket path")?)
        }
        "cache" => {
            let op = match positional.as_slice() {
                [op] if op == "stats" => CacheOp::Stats,
                [op] if op == "gc" => CacheOp::Gc {
                    max_bytes: max_bytes
                        .ok_or_else(|| ParseCliError("`cache gc` needs --max-bytes <N>".into()))?,
                },
                _ => {
                    return Err(ParseCliError(
                        "`cache` needs an operation: `stats` or `gc --max-bytes <N>`".into(),
                    ))
                }
            };
            if cache_dir.is_none() && std::env::var_os("MCPATH_CACHE_DIR").is_none() {
                return Err(ParseCliError(
                    "`cache` needs --cache-dir <dir> (or MCPATH_CACHE_DIR)".into(),
                ));
            }
            Action::Cache(op)
        }
        "help" | "--help" | "-h" => Action::Help,
        other => return Err(ParseCliError(format!("unknown subcommand `{other}`"))),
    };

    // The driver forks fresh shard processes; a prior ledger belongs to
    // one shard, not to the whole partition.
    if shards.is_some() && resume.is_some() {
        return Err(ParseCliError(
            "`--shards` cannot be combined with `--resume` (restart the killed shard \
             with `mcpath shard --resume`, then `mcpath merge`)"
                .into(),
        ));
    }
    if let Some(count) = shards {
        if count == 0 {
            return Err(ParseCliError("`--shards` needs at least 1".into()));
        }
    }
    if eco.is_some() {
        if !matches!(action, Action::Analyze(_)) {
            return Err(ParseCliError("`--eco` only applies to `analyze`".into()));
        }
        if cache_dir.is_none() && std::env::var_os("MCPATH_CACHE_DIR").is_none() {
            return Err(ParseCliError(
                "`--eco` needs --cache-dir <dir>: the baseline's verdicts are \
                 spliced from the artifact store"
                    .into(),
            ));
        }
        // ECO splicing and the other replay modes each own the verdict
        // journal; combining them would double-restore pairs.
        if shards.is_some() || resume.is_some() || shard.is_some() {
            return Err(ParseCliError(
                "`--eco` cannot be combined with `--resume`, `--shard` or `--shards`".into(),
            ));
        }
    }

    // `trace` defaults to the only format it supports; everything else
    // keeps the historical text default.
    let format = format.unwrap_or(match action {
        Action::Trace(_) => OutputFormat::Chrome,
        _ => OutputFormat::Text,
    });

    Ok(Command {
        action,
        engine,
        cycles,
        backtracks,
        learn,
        threads,
        scheduler,
        no_sim,
        sim_lanes,
        no_tape,
        sim_kernel,
        no_jit,
        no_self_pairs,
        no_lint,
        no_slice,
        no_static_classify,
        deny,
        allow,
        max_diags,
        format,
        json,
        canonical,
        cache_dir,
        eco,
        resume,
        shard,
        shards,
        metrics,
        trace_out,
        progress,
        threshold,
        quiet,
    })
}

impl Command {
    /// Builds the observability context requested by `--trace-out` /
    /// `--progress`.
    fn obs(&self) -> Result<ObsCtx, String> {
        let mut obs = ObsCtx::new();
        if let Some(p) = &self.trace_out {
            let sink = FileSink::create(p).map_err(|e| format!("create `{p}`: {e}"))?;
            obs = obs.with_sink(Box::new(sink));
        }
        if self.progress {
            obs = obs.with_progress(Duration::from_millis(200));
        }
        Ok(obs)
    }

    fn config(&self) -> McConfig {
        let defaults = McConfig::default();
        let mut sim = defaults.sim;
        if let Some(lanes) = self.sim_lanes {
            // Validation happens in `analyze` (AnalyzeError::InvalidSimLanes)
            // so env- and flag-sourced values get the same diagnostics.
            sim.lanes = lanes;
        }
        // The flag can only disable the tape; the default (normally on)
        // also honors the MCPATH_NO_TAPE env var.
        sim.tape = sim.tape && !self.no_tape;
        match self.sim_kernel {
            // `--sim-kernel reference` is the tier-ladder spelling of
            // `--no-tape`: the reference path is selected by turning
            // the compiled kernels off.
            Some(SimKernel::Reference) => sim.tape = false,
            Some(k) => sim.kernel = k,
            None => {}
        }
        // `--no-jit` caps the ladder at the fused interpreter, even
        // against an explicit `--sim-kernel jit`.
        if self.no_jit && sim.kernel == SimKernel::Jit {
            sim.kernel = SimKernel::Fused;
        }
        McConfig {
            sim,
            engine: self.engine,
            cycles: self.cycles,
            backtrack_limit: self.backtracks,
            static_learning: self.learn,
            threads: self.threads,
            scheduler: self.scheduler,
            use_sim_filter: !self.no_sim,
            include_self_pairs: !self.no_self_pairs,
            lint: !self.no_lint,
            // The flag can only disable slicing; the default (normally
            // on) also honors the MCPATH_NO_SLICE env var.
            slice: defaults.slice && !self.no_slice,
            // Same pattern for the dataflow pre-pass and the
            // MCPATH_NO_STATIC_CLASSIFY env var.
            static_classify: defaults.static_classify && !self.no_static_classify,
            shard: self.shard.map(|(index, count)| ShardSpec { index, count }),
            // The flag overrides the MCPATH_CACHE_DIR env var (already
            // folded into the default).
            cache_dir: self
                .cache_dir
                .as_ref()
                .map(std::path::PathBuf::from)
                .or(defaults.cache_dir),
            ..defaults
        }
    }

    /// The flags a forked `shard` child must inherit so its config
    /// fingerprint (and its verdict-neutral scheduling knobs) match the
    /// parent `analyze --shards` invocation.
    fn child_flags(&self) -> Vec<String> {
        let mut flags: Vec<String> = Vec::new();
        let mut push = |f: &str| flags.push(f.to_owned());
        match self.engine {
            Engine::Implication => {}
            Engine::Sat => {
                push("--engine");
                push("sat");
            }
            Engine::Bdd { .. } => {
                push("--engine");
                push("bdd");
            }
        }
        push("--cycles");
        push(&self.cycles.to_string());
        push("--backtracks");
        push(&self.backtracks.to_string());
        if self.learn {
            push("--learn");
        }
        push("--threads");
        push(&self.threads.to_string());
        push("--scheduler");
        push(match self.scheduler {
            Scheduler::WorkSteal => "steal",
            Scheduler::Static => "static",
        });
        if self.no_sim {
            push("--no-sim");
        }
        if let Some(lanes) = self.sim_lanes {
            push("--sim-lanes");
            push(&lanes.to_string());
        }
        if self.no_tape {
            push("--no-tape");
        }
        if let Some(kernel) = self.sim_kernel {
            push("--sim-kernel");
            push(kernel.as_str());
        }
        if self.no_jit {
            push("--no-jit");
        }
        if self.no_self_pairs {
            push("--no-self-pairs");
        }
        if self.no_lint {
            push("--no-lint");
        }
        if self.no_slice {
            push("--no-slice");
        }
        if self.no_static_classify {
            push("--no-static-classify");
        }
        push("--quiet");
        flags
    }
}

pub(crate) fn load(path: &str) -> Result<Netlist, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    bench::parse(path, &text).map_err(|e| e.to_string())
}

pub(crate) fn pair_name(nl: &Netlist, i: usize, j: usize) -> String {
    format!(
        "({}, {})",
        nl.node(nl.dffs()[i]).name(),
        nl.node(nl.dffs()[j]).name()
    )
}

/// Executes a parsed command, writing human-readable output into a string
/// (returned on success; errors are returned as strings for the binary to
/// print to stderr).
///
/// # Errors
///
/// Returns a message when the input file cannot be read or parsed, or the
/// configuration is invalid.
pub fn run(cmd: &Command) -> Result<String, String> {
    let mut out = String::new();
    match &cmd.action {
        Action::Help => out.push_str(USAGE),
        Action::Stats(path) => misc::stats(cmd, path, &mut out)?,
        Action::Compare { old, new } => misc::compare(cmd, old, new, &mut out)?,
        Action::Trace(path) => misc::trace(cmd, path, &mut out)?,
        Action::Gen(name) => misc::gen(name, &mut out)?,
        Action::Analyze(path) => analyze::analyze(cmd, path, &mut out)?,
        Action::Shard(path) => analyze::shard(cmd, path, &mut out)?,
        Action::Merge { path, ledgers } => analyze::merge(cmd, path, ledgers, &mut out)?,
        Action::Hazard(path) => misc::hazard(cmd, path, &mut out)?,
        Action::Sweep(path) => misc::sweep(path, &mut out)?,
        Action::Dot(path) => misc::dot(path, &mut out)?,
        Action::Lint(path) => misc::lint(cmd, path, &mut out)?,
        Action::Glitch {
            path,
            src,
            dst,
            out: vcd_path,
        } => glitch::glitch(path, src, dst, vcd_path, &mut out)?,
        Action::Sdc { path, robust } => misc::sdc(cmd, path, *robust, &mut out)?,
        Action::Deps(path) => misc::deps(cmd, path, &mut out)?,
        Action::Kcycle(path, max_k) => misc::kcycle(cmd, path, *max_k, &mut out)?,
        Action::Serve(socket) => serve::serve(cmd, socket, &mut out)?,
        Action::Cache(op) => cache::cache(cmd, op, &mut out)?,
    }
    Ok(out)
}
