//! # mcpath — implication-based multi-cycle path detection
//!
//! Facade crate for the `mcpath` workspace, a from-scratch Rust
//! reproduction of H. Higuchi, *"An Implication-based Method to Detect
//! Multi-Cycle Paths in Large Sequential Circuits"*, DAC 2002.
//!
//! The workspace determines, for every ordered flip-flop pair `(FFi, FFj)`
//! of a synchronous sequential circuit, whether *all* combinational paths
//! between them are multi-cycle paths — i.e. whether a transition launched
//! at `FFi` provably never needs to be captured by `FFj` within one clock
//! cycle. It further validates detected pairs against static hazards using
//! static (co-)sensitization, which the paper shows conventional
//! non-path-based methods overlook.
//!
//! This crate re-exports the member crates under stable names:
//!
//! * [`logic`] — ternary / five-valued logic and gate semantics
//! * [`netlist`] — sequential netlists, `.bench` I/O, time-frame expansion
//! * [`sim`] — bit-parallel and event-driven simulation
//! * [`implication`] — the implication engine with static learning
//! * [`atpg`] — bounded D-algorithm-style backtrack search
//! * [`sat`] — CDCL SAT solver and CNF encoding (baseline engine)
//! * [`bdd`] — BDD package and symbolic reachability (baseline engine)
//! * [`gen`] — paper circuits and synthetic benchmark generators
//! * [`lint`] — structural netlist lints and the SDC constraint validator
//! * [`core`] — the multi-cycle analysis pipeline and hazard checks
//!
//! # Quickstart
//!
//! ```
//! use mcpath::core::{analyze, McConfig, PairClass};
//! use mcpath::gen::circuits;
//!
//! // The paper's Fig.1 circuit: a gray-code counter gating two registers.
//! let netlist = circuits::fig1();
//! let report = analyze(&netlist, &McConfig::default())?;
//!
//! // (FF1, FF2) is a 3-cycle pair: the counter needs 3 cycles to travel
//! // from the state that loads FF1 to the state that captures into FF2.
//! let ff1 = netlist.ff_index(netlist.find_node("FF1").unwrap()).unwrap();
//! let ff2 = netlist.ff_index(netlist.find_node("FF2").unwrap()).unwrap();
//! assert!(matches!(report.class_of(ff1, ff2), Some(PairClass::MultiCycle { .. })));
//! # Ok::<(), mcpath::core::AnalyzeError>(())
//! ```

#![forbid(unsafe_code)]

pub mod cli;

pub use mcp_atpg as atpg;
pub use mcp_bdd as bdd;
pub use mcp_core as core;
pub use mcp_gen as gen;
pub use mcp_implication as implication;
pub use mcp_lint as lint;
pub use mcp_logic as logic;
pub use mcp_netlist as netlist;
pub use mcp_sat as sat;
pub use mcp_sim as sim;
