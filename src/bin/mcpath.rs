//! The `mcpath` command-line tool.
//!
//! ```text
//! mcpath analyze s1423.bench
//! mcpath hazard  s1423.bench --quiet
//! mcpath kcycle  s1423.bench --max-k 6
//! mcpath gen m5378 > m5378.bench
//! ```
//!
//! See [`mcpath::cli`] for the full option set.

fn main() {
    let cmd = match mcpath::cli::parse_args(std::env::args().skip(1)) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", mcpath::cli::USAGE);
            std::process::exit(2);
        }
    };
    match mcpath::cli::run(&cmd) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
