//! `.bench` serialization round-trips preserve analysis results.

use mcpath::core::{analyze, McConfig};
use mcpath::gen::{circuits, generators, suite};
use mcpath::netlist::bench;

#[test]
fn fig1_round_trips_with_identical_analysis() {
    let original = circuits::fig1();
    let text = bench::to_bench(&original);
    let parsed = bench::parse("fig1", &text).expect("reparse");
    assert_eq!(parsed.stats(), original.stats());

    let r1 = analyze(&original, &McConfig::default()).expect("analyze");
    let r2 = analyze(&parsed, &McConfig::default()).expect("analyze");
    // FF order is preserved by the writer (declaration order), so pair
    // indices are directly comparable.
    assert_eq!(r1.multi_cycle_pairs(), r2.multi_cycle_pairs());
    assert_eq!(r1.single_cycle_pairs(), r2.single_cycle_pairs());
}

#[test]
fn generated_circuits_round_trip() {
    let cases = vec![
        generators::gated_datapath(&generators::DatapathConfig::default()),
        generators::pipeline(3, 4),
        generators::lfsr(6, 2),
        circuits::fig4_fragment(),
    ];
    for nl in &cases {
        let text = bench::to_bench(nl);
        let parsed = bench::parse(nl.name(), &text).expect("reparse");
        assert_eq!(parsed.stats(), nl.stats(), "{}", nl.name());
        assert_eq!(
            parsed.connected_ff_pairs(),
            nl.connected_ff_pairs(),
            "{}",
            nl.name()
        );
        // Every node name survives.
        for (_, node) in nl.nodes() {
            assert!(
                parsed.find_node(node.name()).is_some(),
                "{}: lost node {}",
                nl.name(),
                node.name()
            );
        }
    }
}

#[test]
fn suite_circuits_round_trip_structurally() {
    for nl in suite::quick_suite() {
        let text = bench::to_bench(&nl);
        let parsed = bench::parse(nl.name(), &text).expect("reparse");
        assert_eq!(parsed.stats(), nl.stats(), "{}", nl.name());
    }
}

#[test]
fn analysis_verdicts_survive_round_trip_on_quick_suite_head() {
    let nl = suite::quick_suite().remove(1); // m298
    let text = bench::to_bench(&nl);
    let parsed = bench::parse(nl.name(), &text).expect("reparse");
    let r1 = analyze(&nl, &McConfig::default()).expect("analyze");
    let r2 = analyze(&parsed, &McConfig::default()).expect("analyze");
    assert_eq!(r1.multi_cycle_pairs(), r2.multi_cycle_pairs());
}
