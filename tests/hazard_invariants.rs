//! Cross-circuit invariants of the static-hazard checks (Section 5).

use mcpath::core::{analyze, check_hazards, HazardCheck, McConfig};
use mcpath::gen::{circuits, generators, suite};

#[test]
fn checks_partition_the_multicycle_set() {
    for nl in suite::quick_suite() {
        let report = analyze(&nl, &McConfig::default()).expect("analyze");
        let mc = report.multi_cycle_pairs();
        for check in [HazardCheck::Sensitization, HazardCheck::CoSensitization] {
            let hz = check_hazards(&nl, &report, check);
            let mut union: Vec<_> = hz.robust.iter().chain(hz.demoted.iter()).copied().collect();
            union.sort_unstable();
            assert_eq!(union, mc, "{}: {check:?}", nl.name());
        }
    }
}

#[test]
fn cosensitization_demotes_a_superset_of_sensitization() {
    // Every statically sensitizable path is statically co-sensitizable, so
    // the co-sensitization check must flag every pair the sensitization
    // check flags (the paper's Table 3 ordering).
    let mut circuits: Vec<mcpath::netlist::Netlist> = vec![circuits::fig1(), circuits::fig3()];
    circuits.extend(suite::quick_suite());
    for nl in &circuits {
        let report = analyze(nl, &McConfig::default()).expect("analyze");
        let sens = check_hazards(nl, &report, HazardCheck::Sensitization);
        let cosens = check_hazards(nl, &report, HazardCheck::CoSensitization);
        for pair in &sens.demoted {
            assert!(
                cosens.demoted.contains(pair),
                "{}: {pair:?} demoted by sensitization only",
                nl.name()
            );
        }
    }
}

#[test]
fn pinned_transfer_chains_survive_both_checks() {
    // The pinned-enable structure is engineered so the implications pin
    // every on-path value: (S, T) must be robust even under the
    // conservative co-sensitization criterion.
    let nl = generators::composite(
        "pinned",
        &generators::CompositeConfig {
            seed: 7,
            pinned_chains: 3,
            ..generators::CompositeConfig::default()
        },
    );
    let report = analyze(&nl, &McConfig::default()).expect("analyze");
    for r in 0..3 {
        let s = nl
            .ff_index(nl.find_node(&format!("PN{r}_S")).expect("node"))
            .expect("ff");
        let t = nl
            .ff_index(nl.find_node(&format!("PN{r}_T")).expect("node"))
            .expect("ff");
        assert!(
            report.class_of(s, t).expect("pair").is_multi(),
            "chain {r} must be multi-cycle"
        );
        for check in [HazardCheck::Sensitization, HazardCheck::CoSensitization] {
            let hz = check_hazards(&nl, &report, check);
            assert!(
                hz.robust.contains(&(s, t)),
                "chain {r} must be {check:?}-robust: demoted={:?}",
                hz.demoted
            );
        }
    }
}

#[test]
fn hazard_checking_is_deterministic() {
    let nl = circuits::fig3();
    let report = analyze(&nl, &McConfig::default()).expect("analyze");
    let a = check_hazards(&nl, &report, HazardCheck::Sensitization);
    let b = check_hazards(&nl, &report, HazardCheck::Sensitization);
    assert_eq!(a.robust, b.robust);
    assert_eq!(a.demoted, b.demoted);
}

#[test]
fn demotion_rates_are_ordered_on_the_suite() {
    // before >= kept(sensitization) >= kept(co-sensitization), with the
    // sensitization check keeping a solid majority (the paper's Table 3:
    // 9065 -> 8063 -> 5712).
    let mut before = 0usize;
    let mut sens_kept = 0usize;
    let mut cosens_kept = 0usize;
    for nl in suite::quick_suite() {
        let report = analyze(&nl, &McConfig::default()).expect("analyze");
        before += report.multi_cycle_pairs().len();
        sens_kept += check_hazards(&nl, &report, HazardCheck::Sensitization)
            .robust
            .len();
        cosens_kept += check_hazards(&nl, &report, HazardCheck::CoSensitization)
            .robust
            .len();
    }
    assert!(sens_kept <= before);
    assert!(cosens_kept <= sens_kept);
    assert!(
        sens_kept * 2 > before,
        "sensitization should keep a majority: {sens_kept}/{before}"
    );
    assert!(
        cosens_kept > 0,
        "pinned chains must survive co-sensitization"
    );
}
