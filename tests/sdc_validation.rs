//! End-to-end contract: the SDC text the pipeline emits always
//! round-trips through the `mcp-lint` validator with **zero** findings —
//! every constrained pair names real FFs, lies on a combinational path,
//! and appears in the verified multi-cycle set — and corrupt netlists
//! never reach the engines through the binary.

use mcpath::core::{analyze, check_hazards, to_sdc, HazardCheck, McConfig, SdcOptions};
use mcpath::gen::suite;
use mcpath::lint::validate_sdc;
use mcpath::netlist::{bench, Netlist};

/// Emits SDC in all three flavors (plain, sensitization-robust,
/// co-sensitization-robust) and validates each against the netlist and
/// the report's verified pairs.
fn assert_round_trip(nl: &Netlist) {
    let report = analyze(nl, &McConfig::default()).expect("analyze");
    let verified = report.multi_cycle_pairs();
    for robust in [
        None,
        Some(HazardCheck::Sensitization),
        Some(HazardCheck::CoSensitization),
    ] {
        let text = to_sdc(
            nl,
            &report,
            &SdcOptions {
                robust_only: robust.map(|c| check_hazards(nl, &report, c)),
                cycles: 2,
            },
        );
        let diag = validate_sdc(nl, &verified, &text);
        assert!(
            diag.is_empty(),
            "{} ({robust:?}): {}",
            nl.name(),
            diag.render_text(nl.name())
        );
    }
}

#[test]
fn every_data_circuit_round_trips() {
    let mut found = 0usize;
    for entry in std::fs::read_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/data")).expect("data/") {
        let path = entry.expect("entry").path();
        if path.extension().is_none_or(|e| e != "bench") {
            continue;
        }
        let name = path.file_stem().and_then(|s| s.to_str()).expect("stem");
        let text = std::fs::read_to_string(&path).expect("read");
        let nl = bench::parse(name, &text).expect("parse");
        assert_round_trip(&nl);
        found += 1;
    }
    assert!(found >= 1, "data/ should hold at least s27.bench");
}

#[test]
fn the_quick_suite_round_trips() {
    for nl in suite::quick_suite() {
        assert_round_trip(&nl);
    }
}

#[test]
fn analyze_on_a_comb_cycle_netlist_exits_nonzero() {
    let dir = std::env::temp_dir().join("mcpath-sdc-validation");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("cyclic.bench");
    std::fs::write(&path, "OUTPUT(a)\na = NOT(b)\nb = NOT(a)\n").expect("write");

    // `analyze` must refuse the circuit with a diagnostic and a failing
    // exit code (the strict loader catches it before the lint gate even
    // runs — either way, it never reaches the engines).
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_mcpath"))
        .args(["analyze", path.to_str().expect("utf8")])
        .output()
        .expect("run mcpath");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cyclic") || stderr.contains("cycle"),
        "{stderr}"
    );

    // `lint` parses the same file permissively and pinpoints the rule,
    // also exiting non-zero because the finding is error-level.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_mcpath"))
        .args(["lint", path.to_str().expect("utf8")])
        .output()
        .expect("run mcpath");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("comb-cycle"), "{stderr}");
}
