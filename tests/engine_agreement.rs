//! Cross-engine and oracle agreement on randomized sequential circuits.
//!
//! The strongest correctness evidence in the workspace: for random small
//! circuits, the implication+ATPG engine, the SAT engine, the BDD engine
//! and brute-force enumeration must produce identical multi-cycle pair
//! sets.

use mcpath::core::{analyze, Engine, McConfig};
use mcpath::gen::oracle::exhaustive_mc_pairs;
use mcpath::gen::random::{random_netlist, RandomCircuitConfig};
use mcpath::netlist::Netlist;
use proptest::prelude::*;

/// Builds a random synchronous circuit via the shared generator.
fn random_circuit(seed: u64, n_ffs: usize, n_pis: usize, n_gates: usize) -> Netlist {
    random_netlist(
        seed,
        &RandomCircuitConfig {
            ffs: n_ffs,
            pis: n_pis,
            gates: n_gates,
            max_arity: 3,
        },
    )
}

fn check_all_engines(nl: &Netlist) {
    let (oracle_multi, oracle_single) = exhaustive_mc_pairs(nl);
    for engine in [
        Engine::Implication,
        Engine::Sat,
        Engine::Bdd {
            node_limit: 1 << 22,
            reachability: false,
        },
    ] {
        let report = analyze(
            nl,
            &McConfig {
                engine,
                backtrack_limit: 1_000_000,
                ..McConfig::default()
            },
        )
        .expect("analysis succeeds");
        assert_eq!(
            report.multi_cycle_pairs(),
            oracle_multi,
            "{engine:?} multi set on {}",
            nl.name()
        );
        assert_eq!(
            report.single_cycle_pairs(),
            oracle_single,
            "{engine:?} single set on {}",
            nl.name()
        );
        assert!(report.unknown_pairs().is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random circuits with enumerable state/input space.
    #[test]
    fn engines_match_oracle_on_random_circuits(
        seed in 0u64..10_000,
        n_ffs in 2usize..6,
        n_pis in 1usize..4,
        n_gates in 5usize..40,
    ) {
        // Oracle budget: n_ffs + 2*n_pis <= 13 bits here.
        let nl = random_circuit(seed, n_ffs, n_pis, n_gates);
        check_all_engines(&nl);
    }
}

#[test]
fn engines_match_oracle_on_structured_circuits() {
    use mcpath::gen::generators::*;
    let circuits = vec![
        gated_datapath(&DatapathConfig {
            width: 2,
            counter_bits: 2,
            load_phase: 1,
            capture_phase: 0,
        }),
        lfsr(5, 2),
        pipeline(2, 3),
    ];
    for nl in &circuits {
        check_all_engines(nl);
    }
}

#[test]
fn sim_filter_never_disagrees_with_the_oracle() {
    // Everything the random filter drops must truly be single-cycle: the
    // filter produces witnesses, so a disagreement would be a simulator
    // bug.
    for seed in 0..40 {
        let nl = random_circuit(seed, 4, 2, 25);
        let (_, oracle_single) = exhaustive_mc_pairs(&nl);
        let report = analyze(&nl, &McConfig::default()).expect("analysis succeeds");
        for p in &report.pairs {
            if matches!(
                p.class,
                mcpath::core::PairClass::SingleCycle {
                    by: mcpath::core::Step::RandomSim
                }
            ) {
                assert!(
                    oracle_single.contains(&(p.src, p.dst)),
                    "seed {seed}: filter dropped a multi-cycle pair ({}, {})",
                    p.src,
                    p.dst
                );
            }
        }
    }
}

#[test]
fn static_learning_preserves_verdicts_on_random_circuits() {
    for seed in 100..115 {
        let nl = random_circuit(seed, 4, 2, 30);
        let plain = analyze(&nl, &McConfig::default()).expect("analyze");
        let learned = analyze(
            &nl,
            &McConfig {
                static_learning: true,
                ..McConfig::default()
            },
        )
        .expect("analyze");
        assert_eq!(
            plain.multi_cycle_pairs(),
            learned.multi_cycle_pairs(),
            "seed {seed}"
        );
    }
}

#[test]
fn sweeping_preserves_analysis_verdicts() {
    // The sweeper rewrites the logic but not the function: multi-cycle
    // classifications must be identical before and after (FF indices are
    // preserved by construction).
    use mcpath::netlist::sweep;
    for seed in 200..220 {
        let nl = random_circuit(seed, 4, 2, 30);
        let (swept, _) = sweep(&nl);
        let before = analyze(&nl, &McConfig::default()).expect("analyze");
        let after = analyze(&swept, &McConfig::default()).expect("analyze");
        // Structural candidates can only shrink: simplification removes
        // *fake* paths (e.g. through XOR(g, g) = 0), turning some pairs
        // unconnected — those drop from the report. Every pair that
        // survives must keep its verdict.
        for p in &after.pairs {
            let b = before.class_of(p.src, p.dst).expect("pair existed before");
            assert_eq!(
                b.is_multi(),
                p.class.is_multi(),
                "seed {seed} ({}, {})",
                p.src,
                p.dst
            );
        }
        // And a dropped pair is functionally independent of its source, so
        // the original verdict for it depends only on whether the sink can
        // change at all — both classes occur; what must NOT happen is the
        // swept report inventing pairs.
        for p in &after.pairs {
            assert!(
                before.class_of(p.src, p.dst).is_some(),
                "seed {seed}: invented pair ({}, {})",
                p.src,
                p.dst
            );
        }
    }
}
