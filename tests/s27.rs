//! End-to-end analysis of the real s27 — the smallest circuit of the
//! ISCAS89 suite the paper evaluates on (bundled, as its 1989 release is
//! freely redistributable).

use mcpath::core::{analyze, check_hazards, Engine, HazardCheck, McConfig};
use mcpath::gen::oracle::exhaustive_mc_pairs;
use mcpath::netlist::bench;

fn s27() -> mcpath::netlist::Netlist {
    let src = include_str!("../data/s27.bench");
    bench::parse("s27", src).expect("bundled s27 parses")
}

#[test]
fn s27_structure() {
    let nl = s27();
    let s = nl.stats();
    assert_eq!(s.inputs, 4);
    assert_eq!(s.outputs, 1);
    assert_eq!(s.ffs, 3);
    assert_eq!(s.gates, 10);
}

#[test]
fn s27_all_engines_agree_with_brute_force() {
    let nl = s27();
    let (oracle_multi, _) = exhaustive_mc_pairs(&nl);
    for engine in [
        Engine::Implication,
        Engine::Sat,
        Engine::Bdd {
            node_limit: 1 << 20,
            reachability: false,
        },
    ] {
        let report = analyze(
            &nl,
            &McConfig {
                engine,
                backtrack_limit: 100_000,
                ..McConfig::default()
            },
        )
        .expect("analyze");
        assert_eq!(report.multi_cycle_pairs(), oracle_multi, "{engine:?}");
        assert_eq!(report.stats.unknown, 0);
    }
}

#[test]
fn s27_classification_is_complete_with_paper_settings() {
    // Paper settings: backtrack limit 50, no learning — every pair must
    // still be classified (the paper's Table 1 resolves s27 instantly).
    let nl = s27();
    let report = analyze(&nl, &McConfig::default()).expect("analyze");
    assert_eq!(report.stats.unknown, 0);
    assert_eq!(
        report.pairs.len(),
        nl.connected_ff_pairs().len(),
        "all candidates classified"
    );
}

#[test]
fn s27_hazard_checks_run_clean() {
    let nl = s27();
    let report = analyze(&nl, &McConfig::default()).expect("analyze");
    for check in [HazardCheck::Sensitization, HazardCheck::CoSensitization] {
        let hz = check_hazards(&nl, &report, check);
        assert_eq!(
            hz.robust.len() + hz.demoted.len(),
            report.multi_cycle_pairs().len()
        );
    }
}
