//! Golden tests pinning the paper's worked examples.
//!
//! Section 4.2 walks the full flow on Fig.1 step by step and Fig.2 shows
//! the implied values for one assignment; Section 5 treats Fig.3 and
//! Fig.4. These tests encode those narratives exactly.

use mcpath::core::{analyze, check_hazards, HazardCheck, McConfig, PairClass, Step};
use mcpath::gen::circuits;
use mcpath::implication::ImpEngine;
use mcpath::logic::V3;
use mcpath::netlist::Expanded;

/// FF indices in the fig circuits: FF1=0, FF2=1, FF3=2, FF4=3.
const FF1: usize = 0;
const FF2: usize = 1;
const FF3: usize = 2;
const FF4: usize = 3;

#[test]
fn section_4_2_step1_nine_pairs() {
    let nl = circuits::fig1();
    let pairs = nl.connected_ff_pairs();
    assert_eq!(
        pairs,
        vec![
            (FF1, FF1),
            (FF1, FF2),
            (FF2, FF2),
            (FF3, FF1),
            (FF3, FF2),
            (FF3, FF4),
            (FF4, FF1),
            (FF4, FF2),
            (FF4, FF3),
        ],
        "after Step 1, the following 9 FF pairs remain among 16"
    );
}

#[test]
fn section_4_2_step2_five_survivors() {
    // "After Step 2, the following 5 FF pairs remain: (FF1,FF1),
    // (FF1,FF2), (FF2,FF2), (FF3,FF2), (FF4,FF1)."
    let nl = circuits::fig1();
    let report = analyze(&nl, &McConfig::default()).expect("analyze");
    let dropped: Vec<(usize, usize)> = report
        .pairs
        .iter()
        .filter(|p| {
            matches!(
                p.class,
                PairClass::SingleCycle {
                    by: Step::RandomSim
                }
            )
        })
        .map(|p| (p.src, p.dst))
        .collect();
    assert_eq!(
        dropped,
        vec![(FF3, FF1), (FF3, FF4), (FF4, FF2), (FF4, FF3)],
        "random simulation must disprove exactly the paper's 4 pairs"
    );
}

#[test]
fn section_4_2_all_five_survivors_are_multi_cycle() {
    let nl = circuits::fig1();
    let report = analyze(&nl, &McConfig::default()).expect("analyze");
    assert_eq!(
        report.multi_cycle_pairs(),
        vec![(FF1, FF1), (FF1, FF2), (FF2, FF2), (FF3, FF2), (FF4, FF1)],
    );
    // And all of them fall to the implication procedure, as in Fig.2.
    for (i, j) in report.multi_cycle_pairs() {
        assert_eq!(
            report.class_of(i, j),
            Some(PairClass::MultiCycle {
                by: Step::Implication
            }),
            "({i},{j})"
        );
    }
}

#[test]
fn fig2_implied_values_for_ff1_ff2_assignment_01() {
    // The paper's Fig.2: assignment (FF1(t), FF2(t+1)) = (0, 1), with
    // FF1(t+1) = 1 (a rise at FF1). The implication procedure must derive
    // FF2(t+2) = 1 — "the signal at FF2 never changes at time t+2".
    let nl = circuits::fig1();
    let x = Expanded::build(&nl, 2);
    let mut eng = ImpEngine::new(&x);

    eng.assign(x.ff_at(FF1, 0), false).expect("FF1(t)=0");
    eng.assign(x.ff_at(FF1, 1), true).expect("FF1(t+1)=1");
    eng.assign(x.ff_at(FF2, 1), true).expect("FF2(t+1)=1");
    eng.propagate().expect("no contradiction");

    // The key conclusion:
    assert_eq!(eng.value(x.ff_at(FF2, 2)), V3::One, "FF2(t+2) implied 1");

    // And the supporting chain: a rise at FF1 means it loaded, so the
    // counter was in the load state (0,0) at time t and moves to (0,1),
    // closing both enables in frame 1.
    assert_eq!(eng.value(x.ff_at(FF3, 0)), V3::Zero, "FF3(t)");
    assert_eq!(eng.value(x.ff_at(FF4, 0)), V3::Zero, "FF4(t)");
    assert_eq!(eng.value(x.ff_at(FF3, 1)), V3::Zero, "FF3(t+1)");
    assert_eq!(eng.value(x.ff_at(FF4, 1)), V3::One, "FF4(t+1)");
    let en1 = nl.find_node("EN1").expect("node");
    let en2 = nl.find_node("EN2").expect("node");
    assert_eq!(eng.value(x.value_of(1, en1)), V3::Zero, "EN1(t+1)");
    assert_eq!(eng.value(x.value_of(1, en2)), V3::Zero, "EN2(t+1)");
    // The rise itself required the input and load enable:
    let input = nl.find_node("IN").expect("node");
    assert_eq!(eng.value(x.value_of(0, input)), V3::One, "IN(t)=1");
}

#[test]
fn section_5_fig3_hazard_demotes_ff3_ff2() {
    let nl = circuits::fig3();
    let report = analyze(&nl, &McConfig::default()).expect("analyze");
    assert!(report.multi_cycle_pairs().contains(&(FF3, FF2)));
    for check in [HazardCheck::Sensitization, HazardCheck::CoSensitization] {
        let hz = check_hazards(&nl, &report, check);
        assert!(
            hz.demoted.contains(&(FF3, FF2)),
            "{check:?} must flag the Fig.3 hazard"
        );
    }
}

#[test]
fn section_5_fig4_sensitization_vs_cosensitization() {
    // B settled controlling: not statically sensitizable, statically
    // co-sensitizable.
    let nl = circuits::fig4_fragment();
    let mut v0 = vec![V3::X; nl.num_nodes()];
    let mut v1 = vec![V3::X; nl.num_nodes()];
    let qb = nl.find_node("QB").expect("node");
    v0[qb.index()] = V3::Zero;
    v1[qb.index()] = V3::Zero;
    let c = nl.find_node("C").expect("node");
    v0[c.index()] = V3::Zero;
    v1[c.index()] = V3::Zero;
    let qa = nl.ff_index(nl.find_node("QA").expect("node")).expect("ff");
    let qc = nl.ff_index(nl.find_node("QC").expect("node")).expect("ff");
    assert!(!mcpath::core::hazard::glitch_path_exists(
        &nl,
        qa,
        qc,
        &v0,
        &v1,
        HazardCheck::Sensitization
    ));
    assert!(mcpath::core::hazard::glitch_path_exists(
        &nl,
        qa,
        qc,
        &v0,
        &v1,
        HazardCheck::CoSensitization
    ));
}

#[test]
fn table2_attribution_shape_on_fig1() {
    // Even on the tiny Fig.1: most single-cycle pairs die in simulation
    // and all multi-cycle proofs come from implication.
    let nl = circuits::fig1();
    let r = analyze(&nl, &McConfig::default()).expect("analyze");
    assert_eq!(r.stats.single_by_sim, 4);
    assert_eq!(r.stats.multi_by_implication, 5);
    assert_eq!(r.stats.multi_by_atpg, 0);
    assert_eq!(r.stats.unknown, 0);
}
