//! End-to-end checks of sharded multi-process verification through the
//! real `mcpath` binary, plus an in-process merge-determinism matrix.
//!
//! The contract under test: splitting a run over N independent OS
//! processes (`mcpath shard`), killing any of them at an arbitrary
//! journal write (via the deterministic `MCPATH_FAIL_AFTER_EVENTS`
//! fault hook), resuming the victim from its own ledger, and merging
//! (`mcpath merge`) always reproduces the single-process
//! `--threads 1` canonical report byte for byte — with zero verdicts
//! lost and zero pairs re-verified.

use mcp_obs::{read_ledger_resilient_file, FAIL_AFTER_ENV, FAULT_EXIT_CODE};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

fn mcpath() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mcpath"))
}

/// A per-test scratch directory, wiped at creation so reruns start clean.
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mcpath-shard-{test}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn gen_bench(dir: &Path, circuit: &str) -> PathBuf {
    let out = mcpath()
        .args(["gen", circuit])
        .output()
        .expect("run mcpath gen");
    assert!(out.status.success(), "gen {circuit} failed");
    let path = dir.join(format!("{circuit}.bench"));
    std::fs::write(&path, &out.stdout).expect("write bench");
    path
}

fn run_ok(args: &[&str]) -> String {
    let out = mcpath().args(args).output().expect("run mcpath");
    assert!(
        out.status.success(),
        "mcpath {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn run_err(args: &[&str]) -> String {
    let out = mcpath().args(args).output().expect("run mcpath");
    assert!(!out.status.success(), "mcpath {args:?} unexpectedly passed");
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Every circuit checked into `data/`: a 4-shard multi-process run
/// (all shards live concurrently) merges byte-identical to the
/// single-process `--threads 1` run, and the `analyze --shards`
/// driver reproduces the same bytes end to end.
#[test]
fn four_shard_processes_merge_byte_identical_on_every_data_circuit() {
    let dir = scratch("data");
    let data = Path::new(env!("CARGO_MANIFEST_DIR")).join("data");
    let mut circuits: Vec<PathBuf> = std::fs::read_dir(&data)
        .expect("data dir")
        .filter_map(|e| {
            let p = e.expect("entry").path();
            p.extension().is_some_and(|x| x == "bench").then_some(p)
        })
        .collect();
    circuits.sort();
    assert!(!circuits.is_empty(), "data/ must hold at least one circuit");

    for bench in &circuits {
        let bench_s = bench.to_str().expect("utf8 path");
        let name = bench.file_stem().unwrap().to_string_lossy();
        let baseline = dir.join(format!("{name}-baseline.json"));
        run_ok(&[
            "analyze",
            bench_s,
            "--threads",
            "1",
            "--json",
            baseline.to_str().unwrap(),
            "--canonical",
            "--quiet",
        ]);
        let baseline_bytes = std::fs::read(&baseline).expect("baseline json");

        // Four concurrent shard processes, one ledger each.
        let mut children = Vec::new();
        let mut ledgers: Vec<String> = Vec::new();
        for index in 0..4 {
            let ledger = dir.join(format!("{name}-shard-{index}.ndjson"));
            let spec = format!("{index}/4");
            let child = mcpath()
                .args([
                    "shard",
                    bench_s,
                    "--shard",
                    &spec,
                    "--trace-out",
                    ledger.to_str().unwrap(),
                    "--quiet",
                ])
                .stdout(Stdio::null())
                .spawn()
                .expect("spawn shard");
            children.push((index, child));
            ledgers.push(ledger.to_str().unwrap().to_owned());
        }
        for (index, mut child) in children {
            let status = child.wait().expect("wait for shard");
            assert!(status.success(), "{name} shard {index}/4 failed: {status}");
        }

        let merged = dir.join(format!("{name}-merged.json"));
        let mut args = vec!["merge", bench_s];
        args.extend(ledgers.iter().map(String::as_str));
        args.extend(["--json", merged.to_str().unwrap(), "--canonical", "--quiet"]);
        let stdout = run_ok(&args);
        assert!(stdout.contains("merged: 4 shard ledgers"), "{stdout}");
        assert_eq!(
            baseline_bytes,
            std::fs::read(&merged).expect("merged json"),
            "{name}: 4-shard merge must be byte-identical to --threads 1"
        );

        // The fork/join driver covers the same path in one invocation
        // (3 shards, so the partition differs from the manual run).
        let driver = dir.join(format!("{name}-driver.json"));
        run_ok(&[
            "analyze",
            bench_s,
            "--shards",
            "3",
            "--json",
            driver.to_str().unwrap(),
            "--canonical",
            "--quiet",
        ]);
        assert_eq!(
            baseline_bytes,
            std::fs::read(&driver).expect("driver json"),
            "{name}: --shards 3 driver must be byte-identical to --threads 1"
        );

        // A subset of the shard ledgers is refused, not silently merged.
        let err = run_err(&["merge", bench_s, &ledgers[0], &ledgers[2]]);
        assert!(err.contains("missing shard"), "{name}: {err}");
    }
}

/// The fault-injection tier: a shard killed by the deterministic
/// `MCPATH_FAIL_AFTER_EVENTS` hook dies with the dedicated exit code
/// after exactly the admitted number of durable journal lines; `merge`
/// refuses the incomplete shard; resuming it re-verifies none of the
/// restored pairs and loses none; and the post-resume merge is
/// byte-identical to the uninterrupted single-process run.
#[test]
fn fault_injected_kill_is_deterministic_and_resume_loses_nothing() {
    let dir = scratch("fault");
    let bench = gen_bench(&dir, "m820");
    let bench_s = bench.to_str().expect("utf8 path");

    // Single-process canonical baseline.
    let baseline = dir.join("baseline.json");
    run_ok(&[
        "analyze",
        bench_s,
        "--threads",
        "1",
        "--json",
        baseline.to_str().unwrap(),
        "--canonical",
        "--quiet",
    ]);

    // Shard 1/2 runs to completion untouched.
    let shard1 = dir.join("shard-1.ndjson");
    run_ok(&[
        "shard",
        bench_s,
        "--shard",
        "1/2",
        "--trace-out",
        shard1.to_str().unwrap(),
        "--quiet",
    ]);

    // A clean run of shard 0/2 tells us where its engine verdicts sit in
    // the journal, so the kill point can land deterministically halfway
    // through them.
    let full0 = dir.join("shard-0-full.ndjson");
    run_ok(&[
        "shard",
        bench_s,
        "--shard",
        "0/2",
        "--trace-out",
        full0.to_str().unwrap(),
        "--quiet",
    ]);
    let full_text = std::fs::read_to_string(&full0).expect("read full shard ledger");
    let engine_lines: Vec<usize> = full_text
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains("\"engine\":\"") || l.contains("\"engine\": \""))
        .map(|(k, _)| k)
        .collect();
    assert!(
        engine_lines.len() >= 2,
        "shard 0 must own at least two engine-verified pairs"
    );
    // Budget = every line up to and including the middle engine verdict.
    let budget = engine_lines[engine_lines.len() / 2] + 1;

    // Arm the hook: the process must die with the dedicated exit code
    // after exactly `budget` durable lines.
    let killed = dir.join("shard-0-killed.ndjson");
    let out = mcpath()
        .args([
            "shard",
            bench_s,
            "--shard",
            "0/2",
            "--trace-out",
            killed.to_str().unwrap(),
            "--quiet",
        ])
        .env(FAIL_AFTER_ENV, budget.to_string())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .output()
        .expect("run armed shard");
    assert_eq!(
        out.status.code(),
        Some(FAULT_EXIT_CODE),
        "the fault hook must abort with its dedicated exit code"
    );
    let killed_text = std::fs::read_to_string(&killed).expect("read killed ledger");
    assert_eq!(
        killed_text.lines().count(),
        budget,
        "exactly the admitted write budget must be durable"
    );
    // Determinism: the surviving events are the clean run's prefix —
    // same pairs, same verdicts, same order (wall-clock micros aside).
    let identity = |l: &mcp_obs::Ledger| -> Vec<(usize, usize, String, Option<String>)> {
        l.events
            .iter()
            .map(|e| (e.src, e.dst, e.class.clone(), e.engine.clone()))
            .collect()
    };
    let clean = read_ledger_resilient_file(&full0).expect("clean ledger readable");
    let survived = read_ledger_resilient_file(&killed).expect("killed ledger readable");
    assert_eq!(survived.header, clean.header, "same run identity");
    let (survived_ids, clean_ids) = (identity(&survived), identity(&clean));
    assert_eq!(
        survived_ids[..],
        clean_ids[..survived_ids.len()],
        "the killed journal must be an event-prefix of the clean journal"
    );

    // Merging the incomplete shard is refused with a typed message.
    let err = run_err(&[
        "merge",
        bench_s,
        killed.to_str().unwrap(),
        shard1.to_str().unwrap(),
    ]);
    assert!(err.contains("shard 0 is incomplete"), "{err}");

    // Resume the victim. Zero lost: every durable verdict replays.
    // Zero re-verified: no fresh engine event touches a restored pair.
    let partial = read_ledger_resilient_file(&killed).expect("killed ledger readable");
    let restorable: BTreeSet<(usize, usize)> = partial
        .events
        .iter()
        .filter(|e| e.engine.is_some())
        .map(|e| (e.src, e.dst))
        .collect();
    assert!(!restorable.is_empty(), "kill landed after engine verdicts");
    let resumed = dir.join("shard-0-resumed.ndjson");
    let stdout = run_ok(&[
        "shard",
        bench_s,
        "--shard",
        "0/2",
        "--resume",
        killed.to_str().unwrap(),
        "--trace-out",
        resumed.to_str().unwrap(),
        "--quiet",
    ]);
    assert!(
        stdout.contains(&format!("resumed: {} verdicts", restorable.len())),
        "stdout must report the restored count:\n{stdout}"
    );
    let replay = read_ledger_resilient_file(&resumed).expect("resumed ledger readable");
    let replayed: BTreeSet<(usize, usize)> = replay
        .events
        .iter()
        .filter(|e| e.resumed)
        .map(|e| (e.src, e.dst))
        .collect();
    assert_eq!(replayed, restorable, "restored set must replay verbatim");
    for e in replay.events.iter().filter(|e| !e.resumed) {
        if e.engine.is_some() {
            assert!(
                !restorable.contains(&(e.src, e.dst)),
                "pair ({}, {}) was restored yet ran an engine again",
                e.src,
                e.dst
            );
        }
    }
    assert!(
        replay
            .events
            .iter()
            .any(|e| !e.resumed && e.engine.is_some()),
        "a mid-run kill must leave fresh work for the resume to finish"
    );

    // The post-resume merge reproduces the uninterrupted baseline.
    let merged = dir.join("merged.json");
    run_ok(&[
        "merge",
        bench_s,
        resumed.to_str().unwrap(),
        shard1.to_str().unwrap(),
        "--json",
        merged.to_str().unwrap(),
        "--canonical",
        "--quiet",
    ]);
    assert_eq!(
        std::fs::read(&baseline).expect("baseline json"),
        std::fs::read(&merged).expect("merged json"),
        "post-resume merge must be byte-identical to the baseline"
    );
}

/// The in-process determinism matrix: shard counts {1, 2, 4, 7} × both
/// schedulers × a seeded random kill-and-resume of one shard all merge
/// to the `--threads 1` canonical report.
#[test]
fn merge_matrix_with_random_kills_matches_threads_1() {
    use mcp_core::{
        analyze_resume_with, analyze_with, merge_shards, McConfig, Scheduler, ShardSpec,
    };
    use mcp_obs::{Ledger, MemSink, ObsCtx};
    use std::sync::Arc;

    let nl = mcp_gen::suite::quick_suite().remove(2);
    let base = McConfig {
        threads: 1,
        ..McConfig::default()
    };
    let baseline = serde_json::to_string(
        &analyze_with(&nl, &base, &ObsCtx::new())
            .expect("baseline analyze")
            .canonical(),
    )
    .expect("serialize baseline");

    let capture = |cfg: &McConfig| -> Ledger {
        let sink = Arc::new(MemSink::new());
        let obs = ObsCtx::new().with_sink(Box::new(Arc::clone(&sink)));
        analyze_with(&nl, cfg, &obs).expect("shard analyze");
        Ledger {
            header: sink.take_header(),
            spans: sink.drain_spans(),
            events: sink.drain(),
        }
    };

    // Seeded xorshift so the kill points are arbitrary but reproducible.
    let mut rng_state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next_rand = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };

    for scheduler in [Scheduler::WorkSteal, Scheduler::Static] {
        for count in [1u64, 2, 4, 7] {
            let cfg = McConfig {
                threads: 2,
                scheduler,
                ..McConfig::default()
            };
            let mut ledgers: Vec<Ledger> = (0..count)
                .map(|index| {
                    let shard_cfg = McConfig {
                        shard: Some(ShardSpec { index, count }),
                        ..cfg.clone()
                    };
                    capture(&shard_cfg)
                })
                .collect();

            // Kill one shard at a random durable event, then resume it.
            let victim = (next_rand() % count) as usize;
            let events = ledgers[victim].events.len();
            if events > 0 {
                let keep = (next_rand() as usize) % events;
                let mut truncated = ledgers[victim].clone();
                truncated.events.truncate(keep);
                truncated.spans.clear(); // spans are end-of-run only
                let shard_cfg = McConfig {
                    shard: Some(ShardSpec {
                        index: victim as u64,
                        count,
                    }),
                    ..cfg.clone()
                };
                let sink = Arc::new(MemSink::new());
                let obs = ObsCtx::new().with_sink(Box::new(Arc::clone(&sink)));
                analyze_resume_with(&nl, &shard_cfg, &obs, &truncated)
                    .expect("resume killed shard");
                ledgers[victim] = Ledger {
                    header: sink.take_header(),
                    spans: sink.drain_spans(),
                    events: sink.drain(),
                };
            }

            let merged = merge_shards(&nl, &base, &ledgers).expect("merge");
            assert_eq!(
                serde_json::to_string(&merged.canonical()).expect("serialize"),
                baseline,
                "{scheduler:?} × {count} shards (victim {victim}) must merge \
                 byte-identical to --threads 1"
            );
        }
    }
}
