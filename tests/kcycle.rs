//! Integration tests for the k-cycle extension (Section 4.1).

use mcpath::core::{analyze, Engine, McConfig};
use mcpath::gen::generators::{gated_datapath, DatapathConfig};

fn datapath_pair(latency: u64, counter_bits: usize) -> (mcpath::netlist::Netlist, usize, usize) {
    let nl = gated_datapath(&DatapathConfig {
        width: 2,
        counter_bits,
        load_phase: 0,
        capture_phase: latency,
    });
    let a = nl
        .ff_index(nl.find_node("D0_A0").expect("node"))
        .expect("ff");
    let b = nl
        .ff_index(nl.find_node("D0_B0").expect("node"))
        .expect("ff");
    (nl, a, b)
}

#[test]
fn staircase_for_latency_three() {
    let (nl, a, b) = datapath_pair(3, 2);
    for (k, expect) in [(2u32, true), (3, true), (4, false)] {
        let r = analyze(
            &nl,
            &McConfig {
                cycles: k,
                backtrack_limit: 100_000,
                ..McConfig::default()
            },
        )
        .expect("analyze");
        assert_eq!(
            r.class_of(a, b).map(|c| c.is_multi()),
            Some(expect),
            "k={k}"
        );
    }
}

#[test]
fn staircase_for_latency_six_with_eight_phase_counter() {
    let (nl, a, b) = datapath_pair(6, 3);
    for k in 2..=7u32 {
        let r = analyze(
            &nl,
            &McConfig {
                cycles: k,
                backtrack_limit: 100_000,
                ..McConfig::default()
            },
        )
        .expect("analyze");
        assert_eq!(
            r.class_of(a, b).map(|c| c.is_multi()),
            Some(u64::from(k) <= 6),
            "k={k}"
        );
    }
}

#[test]
fn sat_engine_agrees_on_k_cycle_verdicts() {
    let (nl, a, b) = datapath_pair(5, 3);
    for k in 2..=6u32 {
        let imp = analyze(
            &nl,
            &McConfig {
                cycles: k,
                backtrack_limit: 100_000,
                ..McConfig::default()
            },
        )
        .expect("analyze");
        let sat = analyze(
            &nl,
            &McConfig {
                cycles: k,
                engine: Engine::Sat,
                ..McConfig::default()
            },
        )
        .expect("analyze");
        assert_eq!(
            imp.class_of(a, b).map(|c| c.is_multi()),
            sat.class_of(a, b).map(|c| c.is_multi()),
            "k={k}"
        );
        assert_eq!(imp.multi_cycle_pairs(), sat.multi_cycle_pairs(), "k={k}");
    }
}

#[test]
fn larger_budgets_only_shrink_the_multicycle_set() {
    // A k-cycle pair is also a (k-1)-cycle pair: the verified sets must be
    // monotonically shrinking in k.
    let (nl, _, _) = datapath_pair(3, 2);
    let mut prev: Option<Vec<(usize, usize)>> = None;
    for k in 2..=5u32 {
        let r = analyze(
            &nl,
            &McConfig {
                cycles: k,
                backtrack_limit: 100_000,
                ..McConfig::default()
            },
        )
        .expect("analyze");
        let multi = r.multi_cycle_pairs();
        if let Some(prev) = &prev {
            for pair in &multi {
                assert!(
                    prev.contains(pair),
                    "pair {pair:?} multi at k={k} but not at k={}",
                    k - 1
                );
            }
        }
        prev = Some(multi);
    }
}

#[test]
fn self_hold_pairs_are_k_cycle_for_every_k() {
    // A register that only ever holds is k-cycle for any budget.
    let nl = mcpath::netlist::bench::parse("hold", "INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = BUFF(q)")
        .expect("parse");
    for k in 2..=6u32 {
        let r = analyze(
            &nl,
            &McConfig {
                cycles: k,
                ..McConfig::default()
            },
        )
        .expect("analyze");
        assert!(r.class_of(0, 0).expect("pair exists").is_multi(), "k={k}");
    }
}
