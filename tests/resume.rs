//! End-to-end checks of the run-ledger contract through the real
//! `mcpath` binary: a SIGKILL mid-analysis must lose no completed
//! verdict, `--resume` must reproduce the uninterrupted run's canonical
//! report byte for byte without re-running any restored pair, and the
//! `trace` exporter must emit valid Chrome trace-event JSON with one
//! track per worker thread.

use mcp_obs::{read_ledger_resilient_file, ChromeTrace};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn mcpath() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mcpath"))
}

/// A per-test scratch directory under the target-adjacent temp root,
/// wiped at creation so reruns start clean.
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mcpath-resume-{test}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn gen_bench(dir: &Path, circuit: &str) -> PathBuf {
    let out = mcpath()
        .args(["gen", circuit])
        .output()
        .expect("run mcpath gen");
    assert!(out.status.success(), "gen {circuit} failed");
    let path = dir.join(format!("{circuit}.bench"));
    std::fs::write(&path, &out.stdout).expect("write bench");
    path
}

fn run_ok(args: &[&str]) -> String {
    let out = mcpath().args(args).output().expect("run mcpath");
    assert!(
        out.status.success(),
        "mcpath {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn sigkill_mid_run_loses_no_verdicts_and_resume_is_byte_identical() {
    let dir = scratch("kill");
    let bench = gen_bench(&dir, "m38584");
    let bench = bench.to_str().expect("utf8 path");
    let ledger = dir.join("run.ndjson");
    let ledger_s = ledger.to_str().expect("utf8 path");

    // Uninterrupted baseline, canonical form.
    let baseline_json = dir.join("baseline.json");
    run_ok(&[
        "analyze",
        bench,
        "--json",
        baseline_json.to_str().unwrap(),
        "--canonical",
        "--quiet",
    ]);

    // Launch the same analysis with a ledger, and SIGKILL it once the
    // pair loop is demonstrably in flight (several thousand records past
    // the header and the bulk sim-drop burst).
    let mut child = mcpath()
        .args(["analyze", bench, "--trace-out", ledger_s, "--quiet"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn analyze");
    let deadline = Instant::now() + Duration::from_secs(60);
    let killed_mid_run = loop {
        if child.try_wait().expect("try_wait").is_some() {
            break false; // finished before we could kill it — still resumable
        }
        let lines = std::fs::read_to_string(&ledger)
            .map(|t| t.lines().count())
            .unwrap_or(0);
        if lines >= 5000 {
            child.kill().expect("SIGKILL the run"); // Child::kill is SIGKILL on unix
            child.wait().expect("reap");
            break true;
        }
        assert!(
            Instant::now() < deadline,
            "analyze never reached the pair loop"
        );
        std::thread::sleep(Duration::from_millis(2));
    };

    // What survived the kill: the restorable verdicts are exactly the
    // engine-resolved events (sim drops are recomputed on resume).
    let partial = read_ledger_resilient_file(&ledger).expect("partial ledger readable");
    assert!(partial.header.is_some(), "header must be written up front");
    let restorable: BTreeSet<(usize, usize)> = partial
        .events
        .iter()
        .filter(|e| e.engine.is_some())
        .map(|e| (e.src, e.dst))
        .collect();
    assert!(
        !restorable.is_empty(),
        "kill landed before any engine verdict was flushed"
    );

    // Resume into a fresh ledger and compare canonical bytes.
    let resumed_json = dir.join("resumed.json");
    let ledger2 = dir.join("resumed.ndjson");
    let stdout = run_ok(&[
        "analyze",
        bench,
        "--resume",
        ledger_s,
        "--trace-out",
        ledger2.to_str().unwrap(),
        "--json",
        resumed_json.to_str().unwrap(),
        "--canonical",
        "--quiet",
    ]);
    assert!(
        stdout.contains(&format!("resumed: {} verdicts", restorable.len())),
        "stdout must report the restored count:\n{stdout}"
    );

    let baseline = std::fs::read(&baseline_json).expect("baseline json");
    let resumed = std::fs::read(&resumed_json).expect("resumed json");
    assert!(
        baseline == resumed,
        "resumed canonical report must be byte-identical to the baseline"
    );

    // Zero re-verified pairs: in the resumed run's ledger, the restored
    // set is exactly the `resumed`-flagged records, and every freshly
    // computed engine verdict lies outside it.
    let replay = read_ledger_resilient_file(&ledger2).expect("resumed ledger readable");
    let replayed: BTreeSet<(usize, usize)> = replay
        .events
        .iter()
        .filter(|e| e.resumed)
        .map(|e| (e.src, e.dst))
        .collect();
    assert_eq!(replayed, restorable, "restored set must replay verbatim");
    for e in replay.events.iter().filter(|e| !e.resumed) {
        if e.engine.is_some() {
            assert!(
                !restorable.contains(&(e.src, e.dst)),
                "pair ({}, {}) was restored yet ran an engine again",
                e.src,
                e.dst
            );
        }
    }
    if killed_mid_run {
        assert!(
            replay
                .events
                .iter()
                .any(|e| !e.resumed && e.engine.is_some()),
            "a mid-run kill must leave fresh work for the resume to finish"
        );
    }
}

#[test]
fn stats_accepts_a_pr1_era_journal() {
    // The checked-in fixture predates the run header, spans, slice
    // fields and the `resumed` flag; `stats` must still render it.
    let fixture =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/obs/tests/fixtures/pr1_journal.ndjson");
    let out = run_ok(&["stats", fixture.to_str().unwrap()]);
    assert!(
        out.contains("trace journal: 5 pair events"),
        "stats must render the old journal:\n{out}"
    );
    assert!(out.contains("implication"));
    assert!(out.contains("contradiction=2"));
}

#[test]
fn trace_export_is_valid_chrome_json_with_a_track_per_worker() {
    let dir = scratch("trace");
    let bench = gen_bench(&dir, "m820");
    let ledger = dir.join("run.ndjson");
    run_ok(&[
        "analyze",
        bench.to_str().unwrap(),
        "--threads",
        "2",
        "--trace-out",
        ledger.to_str().unwrap(),
        "--quiet",
    ]);

    let stdout = run_ok(&["trace", ledger.to_str().unwrap(), "--format", "chrome"]);
    let trace: ChromeTrace = serde_json::from_str(&stdout).expect("valid trace-event JSON");
    assert_eq!(trace.displayTimeUnit, "ms");
    assert!(!trace.traceEvents.is_empty());
    for e in &trace.traceEvents {
        assert_eq!(e.ph, "X", "complete events only");
        assert_eq!(e.pid, 1);
        assert!(!e.name.is_empty() && !e.cat.is_empty());
        assert_eq!(e.cat, e.name.split('/').next().unwrap());
    }

    // At `--threads 2` the pair loop spawns two workers, each stamping
    // its spans with its own thread-local track id.
    let worker_tids: BTreeSet<u64> = trace
        .traceEvents
        .iter()
        .filter(|e| e.name.ends_with("/worker"))
        .map(|e| e.tid)
        .collect();
    assert!(
        worker_tids.len() >= 2,
        "expected at least two worker tracks, got {worker_tids:?}"
    );
}
